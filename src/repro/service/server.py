"""The scheduler-as-a-service daemon behind ``repro-sched serve``.

One asyncio event loop owns all connections and the admission queue;
actual scheduling work runs in worker *processes* dispatched through the
hardened :func:`repro.perf.parallel_map` (``isolate=True``), one process
per in-flight request.  The layering mirrors Uberun's master/daemon
split: the event loop is the master (framing, admission, deadlines,
telemetry), the pool workers are the daemons that execute requests.

Robustness contract (gated by ``make serve-smoke``; docs/SERVICE.md):

* **Admission control** — the request queue is bounded; when it is full
  new work requests are *shed* immediately with an ``overloaded`` error
  carrying a ``retry_after_s`` hint, instead of building unbounded
  backlog.  Inline methods (``ping``/``status``/``sweep_status``) bypass
  the queue so the daemon stays observable under overload.
* **Deadlines** — each request may carry ``deadline_s``; the default
  applies otherwise.  A request still queued at its deadline is answered
  ``deadline_exceeded`` without running; a running request is abandoned
  at the deadline (its worker pool is cancelled and replaced — the slot
  is reclaimed immediately even if the worker is still unwinding).
* **Malformed-request isolation** — a bad frame answers with a
  structured error and the connection keeps serving (only corrupt
  headers/torn frames close it); bad params fail only that request.
* **Worker-crash recovery** — a died worker is retried up to
  ``retries`` times within the deadline; if the crash persists the one
  affected request fails with ``worker_crashed`` (retryable) while every
  other request proceeds.
* **Graceful drain** — on SIGTERM/SIGINT the daemon stops accepting,
  lets in-flight requests finish, answers queued-but-unstarted requests
  with ``shutting_down`` *and* checkpoints them to
  ``SERVICE_CHECKPOINT.jsonl`` (so a supervisor can resubmit), writes a
  final state file and exits 0.

Telemetry rides :mod:`repro.obs`: a :class:`~repro.obs.MetricsRegistry`
holds ``service.*`` counters (requests, sheds, deadline hits, crashes, a
latency histogram), heartbeat records stream to
``SERVICE_HEARTBEAT.jsonl`` via the shared degrading writer, and the
``status`` method returns the registry snapshot over the wire.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import sys
import time
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Optional, Set, Union

from ..obs.metrics import MetricsRegistry
from ..obs.spans import DegradingJsonlWriter
from ..perf.parallel import ParallelExecutionError, parallel_map
from . import protocol as wire
from .handlers import execute_request

__all__ = [
    "ServiceConfig",
    "SchedulerService",
    "serve",
    "STATE_NAME",
    "HEARTBEAT_NAME",
    "CHECKPOINT_NAME",
    "LOG_NAME",
]

#: files the daemon maintains under its state directory
STATE_NAME = "SERVICE.json"
HEARTBEAT_NAME = "SERVICE_HEARTBEAT.jsonl"
CHECKPOINT_NAME = "SERVICE_CHECKPOINT.jsonl"
LOG_NAME = "SERVICE_LOG.jsonl"

#: fallback retry hint when no latency estimate exists yet (seconds)
_DEFAULT_RETRY_AFTER = 0.5


@dataclass
class ServiceConfig:
    """Tunables of one daemon instance (CLI flags map 1:1 onto these)."""

    host: str = "127.0.0.1"
    port: int = 0                     #: 0 = ephemeral; see SERVICE.json
    state_dir: str = ".repro-service"
    workers: int = 2                  #: concurrent in-flight work requests
    queue_limit: int = 16             #: admission queue bound (shed above)
    default_deadline_s: float = 30.0  #: applied when a request has none
    timeout: Optional[float] = None   #: extra per-attempt cap (parallel_map)
    retries: int = 1                  #: worker-crash re-runs per request
    backoff: float = 0.05             #: retry backoff base (parallel_map)
    max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES
    allow_test_faults: bool = False   #: honor the _fault injection param
    heartbeat_interval_s: float = 2.0

    def validate(self) -> "ServiceConfig":
        if self.workers < 1:
            raise ValueError("workers must be >= 1")
        if self.queue_limit < 1:
            raise ValueError("queue-limit must be >= 1")
        if self.default_deadline_s <= 0:
            raise ValueError("default-deadline must be > 0 seconds")
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.timeout is not None and self.timeout <= 0:
            raise ValueError("timeout must be > 0 seconds")
        if not (0 <= self.port < 65536):
            raise ValueError("port must be in [0, 65535] (0 = auto)")
        if self.backoff < 0:
            raise ValueError("backoff must be >= 0 seconds")
        if self.heartbeat_interval_s <= 0:
            raise ValueError("heartbeat-interval must be > 0 seconds")
        return self


@dataclass
class _Pending:
    """One admitted work request waiting for (or occupying) a slot."""

    request: wire.Request
    conn: "_Connection"
    t_admitted: float                 #: monotonic admission time
    deadline_s: float                 #: relative to admission


class _Connection:
    """Per-connection write side: one lock so pipelined responses from
    different dispatch slots never interleave mid-frame."""

    __slots__ = ("reader", "writer", "lock", "peer", "closed")

    def __init__(self, reader, writer) -> None:
        self.reader = reader
        self.writer = writer
        self.lock = asyncio.Lock()
        peer = writer.get_extra_info("peername")
        self.peer = f"{peer[0]}:{peer[1]}" if peer else "?"
        self.closed = False

    async def send(self, payload: Dict, max_bytes: int) -> bool:
        """Send one response frame; False when the peer is gone."""
        async with self.lock:
            if self.closed:
                return False
            try:
                await wire.write_frame(self.writer, payload, max_bytes)
                return True
            except (ConnectionError, OSError):
                self.closed = True
                return False


class SchedulerService:
    """The daemon: construct, then :meth:`run` (blocks until shutdown)."""

    def __init__(self, config: ServiceConfig) -> None:
        self.config = config.validate()
        self.metrics = MetricsRegistry()
        self.state_dir = Path(config.state_dir)
        self._heartbeat = DegradingJsonlWriter(
            self.state_dir / HEARTBEAT_NAME, label="service heartbeat"
        )
        self._log_writer = DegradingJsonlWriter(
            self.state_dir / LOG_NAME, label="service log"
        )
        self._checkpoint = DegradingJsonlWriter(
            self.state_dir / CHECKPOINT_NAME, label="service checkpoint"
        )
        self._queue: "asyncio.Queue[_Pending]" = asyncio.Queue(
            maxsize=config.queue_limit
        )
        self._threads = ThreadPoolExecutor(
            max_workers=config.workers,
            thread_name_prefix="repro-service-dispatch",
        )
        self._connections: Set[_Connection] = set()
        self._shutdown = asyncio.Event()
        self._draining = False
        self._in_flight = 0
        self._t_started = time.monotonic()
        self._latency_ema: Optional[float] = None
        self._server: Optional[asyncio.base_events.Server] = None
        self._bound_port: Optional[int] = None

    # ------------------------------------------------------------------
    # Logging / telemetry
    # ------------------------------------------------------------------

    def _log(self, event: str, **fields) -> None:
        record = {"ts": round(time.time(), 3), "event": event, **fields}
        self._log_writer.write(record)
        print(
            f"[repro-sched serve] {event} "
            + " ".join(f"{k}={v}" for k, v in fields.items()),
            file=sys.stderr,
            flush=True,
        )

    def _beat(self, event: str = "beat", **extra) -> None:
        self.metrics.gauge_max(
            "service.queue_depth_max", self._queue.qsize()
        )
        self._heartbeat.write({
            "ts": round(time.time(), 3),
            "pid": os.getpid(),
            "event": event,
            "queue_depth": self._queue.qsize(),
            "in_flight": self._in_flight,
            "draining": self._draining,
            "uptime_s": round(time.monotonic() - self._t_started, 3),
            "requests_total": self.metrics.counter("service.requests_total"),
            "shed_total": self.metrics.counter("service.shed_total"),
            "deadline_exceeded": self.metrics.counter(
                "service.deadline_exceeded"
            ),
            "worker_crashes": self.metrics.counter("service.worker_crashes"),
            **extra,
        })

    def _write_state(self, status: str) -> None:
        try:
            self.state_dir.mkdir(parents=True, exist_ok=True)
            tmp = self.state_dir / f".{STATE_NAME}.{os.getpid()}.tmp"
            with open(tmp, "w", encoding="utf-8") as fh:
                json.dump({
                    "status": status,
                    "host": self.config.host,
                    "port": self._bound_port,
                    "pid": os.getpid(),
                    "protocol": wire.PROTOCOL_VERSION,
                    "workers": self.config.workers,
                    "queue_limit": self.config.queue_limit,
                    "default_deadline_s": self.config.default_deadline_s,
                }, fh, indent=2)
                fh.write("\n")
            os.replace(tmp, self.state_dir / STATE_NAME)
        except OSError as exc:  # state file is advisory, never fatal
            self._log("state-write-failed", error=str(exc))

    def _retry_after(self) -> float:
        """Load-shedding hint: expected time for one slot to free up."""
        per_request = (
            self._latency_ema if self._latency_ema is not None
            else _DEFAULT_RETRY_AFTER
        )
        waiting = self._queue.qsize() + self._in_flight
        return round(
            max(per_request * (waiting + 1) / self.config.workers, 0.05), 3
        )

    def _observe_latency(self, seconds: float) -> None:
        self.metrics.observe("service.request_seconds", seconds)
        self._latency_ema = (
            seconds if self._latency_ema is None
            else 0.8 * self._latency_ema + 0.2 * seconds
        )

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    async def run(self) -> int:
        """Serve until SIGTERM/SIGINT, then drain; returns the exit code."""
        loop = asyncio.get_running_loop()
        for sig in (signal.SIGTERM, signal.SIGINT):
            try:
                loop.add_signal_handler(sig, self._request_shutdown, sig)
            except (NotImplementedError, RuntimeError):  # pragma: no cover
                pass  # non-unix platforms fall back to KeyboardInterrupt
        self._server = await asyncio.start_server(
            self._on_connection, self.config.host, self.config.port
        )
        sockets = self._server.sockets or ()
        self._bound_port = sockets[0].getsockname()[1] if sockets else None
        self._write_state("serving")
        self._log(
            "listening", host=self.config.host, port=self._bound_port,
            workers=self.config.workers,
            queue_limit=self.config.queue_limit,
        )
        dispatchers = [
            asyncio.create_task(self._dispatch_loop(i))
            for i in range(self.config.workers)
        ]
        beat_task = asyncio.create_task(self._heartbeat_loop())
        self._beat("start")
        try:
            await self._shutdown.wait()
            return await self._drain(dispatchers, beat_task)
        finally:
            self._threads.shutdown(wait=False, cancel_futures=True)

    def _request_shutdown(self, sig: Union[int, signal.Signals]) -> None:
        name = getattr(sig, "name", str(sig))
        if not self._draining:
            self._log("shutdown-requested", signal=name)
        self._draining = True
        self._shutdown.set()

    async def _drain(self, dispatchers, beat_task) -> int:
        """Finish in-flight work, checkpoint the rest, exit cleanly."""
        self._draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        self._write_state("draining")
        self._beat("draining")
        # dispatchers answer everything still queued with shutting_down
        # (checkpointing each request) because _draining is set; waiting
        # on join() therefore also waits for genuinely in-flight work
        await self._queue.join()
        for task in dispatchers:
            task.cancel()
        await asyncio.gather(*dispatchers, return_exceptions=True)
        beat_task.cancel()
        await asyncio.gather(beat_task, return_exceptions=True)
        for conn in list(self._connections):
            conn.closed = True
            try:
                conn.writer.close()
            except Exception:  # pragma: no cover - best-effort close
                pass
        self._beat("stop")
        self._write_state("stopped")
        self._log(
            "stopped",
            requests_total=self.metrics.counter("service.requests_total"),
            shed_total=self.metrics.counter("service.shed_total"),
            checkpointed=self.metrics.counter("service.checkpointed"),
        )
        return 0

    async def _heartbeat_loop(self) -> None:
        while True:
            await asyncio.sleep(self.config.heartbeat_interval_s)
            self._beat()

    # ------------------------------------------------------------------
    # Connection handling
    # ------------------------------------------------------------------

    async def _on_connection(self, reader, writer) -> None:
        conn = _Connection(reader, writer)
        self._connections.add(conn)
        self.metrics.inc("service.connections_total")
        try:
            await self._serve_connection(conn)
        finally:
            self._connections.discard(conn)
            conn.closed = True
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:  # pragma: no cover - best-effort close
                pass

    async def _serve_connection(self, conn: _Connection) -> None:
        """The frame loop: one bad frame never kills it (isolation)."""
        while not conn.closed:
            try:
                payload = await wire.read_frame(
                    conn.reader, self.config.max_frame_bytes
                )
            except wire.ProtocolError as exc:
                self.metrics.inc("service.malformed_total")
                self.metrics.inc(f"service.errors.{exc.code}")
                await conn.send(
                    wire.error_response(None, exc.code, exc.message),
                    self.config.max_frame_bytes,
                )
                if exc.fatal:
                    self._log(
                        "connection-desync", peer=conn.peer, code=exc.code
                    )
                    return
                continue
            except (ConnectionError, OSError):
                return
            if payload is None:  # clean EOF
                return
            await self._handle_payload(conn, payload)

    async def _handle_payload(self, conn: _Connection, payload: Dict) -> None:
        self.metrics.inc("service.requests_total")
        try:
            request = wire.validate_request(payload)
        except wire.ProtocolError as exc:
            self.metrics.inc(f"service.errors.{exc.code}")
            await conn.send(
                wire.error_response(
                    wire.salvage_id(payload), exc.code, exc.message
                ),
                self.config.max_frame_bytes,
            )
            return
        if request.method in wire.INLINE_METHODS:
            await self._answer_inline(conn, request)
            return
        if self._draining:
            self.metrics.inc(f"service.errors.{wire.E_SHUTTING_DOWN}")
            await conn.send(
                wire.error_response(
                    request.id, wire.E_SHUTTING_DOWN,
                    "daemon is draining; resubmit elsewhere or later",
                    retry_after_s=self._retry_after(),
                ),
                self.config.max_frame_bytes,
            )
            return
        deadline = (
            request.deadline_s if request.deadline_s is not None
            else self.config.default_deadline_s
        )
        pending = _Pending(
            request=request, conn=conn,
            t_admitted=time.monotonic(), deadline_s=deadline,
        )
        try:
            self._queue.put_nowait(pending)
        except asyncio.QueueFull:
            self.metrics.inc("service.shed_total")
            self.metrics.inc(f"service.errors.{wire.E_OVERLOADED}")
            await conn.send(
                wire.error_response(
                    request.id, wire.E_OVERLOADED,
                    f"admission queue full "
                    f"({self.config.queue_limit} waiting)",
                    retry_after_s=self._retry_after(),
                ),
                self.config.max_frame_bytes,
            )

    # ------------------------------------------------------------------
    # Inline methods (served on the event loop, never queued)
    # ------------------------------------------------------------------

    async def _answer_inline(
        self, conn: _Connection, request: wire.Request
    ) -> None:
        self.metrics.inc("service.inline_total")
        try:
            if request.method == "ping":
                result: Dict = {
                    "pong": True,
                    "protocol": wire.PROTOCOL_VERSION,
                    "pid": os.getpid(),
                    "draining": self._draining,
                }
            elif request.method == "status":
                result = self.status_snapshot()
            else:  # sweep_status
                result = self._sweep_status(request.params)
        except (ValueError, KeyError, TypeError) as exc:
            self.metrics.inc(f"service.errors.{wire.E_INVALID_PARAMS}")
            await conn.send(
                wire.error_response(
                    request.id, wire.E_INVALID_PARAMS,
                    f"{request.method}: {exc}",
                ),
                self.config.max_frame_bytes,
            )
            return
        self.metrics.inc("service.responses_ok")
        await conn.send(
            wire.ok_response(request.id, result), self.config.max_frame_bytes
        )

    def status_snapshot(self) -> Dict:
        return {
            "protocol": wire.PROTOCOL_VERSION,
            "pid": os.getpid(),
            "uptime_s": round(time.monotonic() - self._t_started, 3),
            "draining": self._draining,
            "queue_depth": self._queue.qsize(),
            "in_flight": self._in_flight,
            "workers": self.config.workers,
            "queue_limit": self.config.queue_limit,
            "default_deadline_s": self.config.default_deadline_s,
            "metrics": self.metrics.to_jsonable(),
        }

    @staticmethod
    def _sweep_status(params: Dict) -> Dict:
        from ..sweep import DEFAULT_CACHE_DIR, sweep_status
        from ..sweep.registry import get_sweep

        name = params.get("name")
        if not isinstance(name, str):
            raise ValueError("param 'name' must be a sweep name")
        entry = get_sweep(name)
        scale = params.get("scale", "small")
        seed = params.get("seed", 0)
        if not isinstance(seed, int) or isinstance(seed, bool):
            raise ValueError("param 'seed' must be an integer")
        cache_dir = params.get("cache_dir", DEFAULT_CACHE_DIR)
        if not isinstance(cache_dir, str):
            raise ValueError("param 'cache_dir' must be a string")
        return sweep_status(entry.build_spec(scale, seed), cache_dir)

    # ------------------------------------------------------------------
    # Work dispatch (queue -> worker process via hardened parallel_map)
    # ------------------------------------------------------------------

    async def _dispatch_loop(self, slot: int) -> None:
        while True:
            pending = await self._queue.get()
            try:
                await self._execute(slot, pending)
            except Exception as exc:  # pragma: no cover - last resort
                self._log(
                    "dispatch-error", slot=slot,
                    error=f"{type(exc).__name__}: {exc}",
                )
                await pending.conn.send(
                    wire.error_response(
                        pending.request.id, wire.E_INTERNAL,
                        f"dispatch failed: {type(exc).__name__}: {exc}",
                    ),
                    self.config.max_frame_bytes,
                )
            finally:
                self._queue.task_done()

    def _run_in_worker(self, task: Dict, timeout: float) -> Dict:
        """Blocking (thread-side) bridge into the hardened pool runner."""
        attempt_cap = (
            min(timeout, self.config.timeout)
            if self.config.timeout is not None else timeout
        )
        stats: Dict[str, int] = {}
        try:
            envelope = parallel_map(
                execute_request,
                [task],
                workers=1,
                timeout=attempt_cap,
                retries=self.config.retries,
                backoff=self.config.backoff,
                stats=stats,
                isolate=True,
            )[0]
        finally:
            for key, value in stats.items():
                if value:
                    self.metrics.inc(f"service.pool_{key}", value)
        return envelope

    async def _execute(self, slot: int, pending: _Pending) -> None:
        request = pending.request
        conn = pending.conn
        max_bytes = self.config.max_frame_bytes
        if self._draining:
            # queued but never started: checkpoint for resubmission
            self._checkpoint.write({
                "ts": round(time.time(), 3),
                "id": request.id,
                "method": request.method,
                "params": request.params,
                "deadline_s": pending.deadline_s,
            })
            self.metrics.inc("service.checkpointed")
            self.metrics.inc(f"service.errors.{wire.E_SHUTTING_DOWN}")
            await conn.send(
                wire.error_response(
                    request.id, wire.E_SHUTTING_DOWN,
                    "daemon drained before this request started; it was "
                    "checkpointed to SERVICE_CHECKPOINT.jsonl",
                ),
                max_bytes,
            )
            return
        remaining = pending.deadline_s - (
            time.monotonic() - pending.t_admitted
        )
        if remaining <= 0:
            self.metrics.inc("service.deadline_exceeded")
            self.metrics.inc(f"service.errors.{wire.E_DEADLINE_EXCEEDED}")
            await conn.send(
                wire.error_response(
                    request.id, wire.E_DEADLINE_EXCEEDED,
                    f"deadline of {pending.deadline_s}s expired while "
                    f"queued",
                ),
                max_bytes,
            )
            return
        task = {
            "method": request.method,
            "params": request.params,
            "allow_faults": self.config.allow_test_faults,
        }
        self._in_flight += 1
        t0 = time.monotonic()
        loop = asyncio.get_running_loop()
        try:
            envelope = await loop.run_in_executor(
                self._threads, self._run_in_worker, task, remaining
            )
        except ParallelExecutionError as exc:
            elapsed = time.monotonic() - pending.t_admitted
            if elapsed >= pending.deadline_s:
                self.metrics.inc("service.deadline_exceeded")
                code, message = wire.E_DEADLINE_EXCEEDED, (
                    f"deadline of {pending.deadline_s}s exceeded; the "
                    f"worker was cancelled and its slot reclaimed"
                )
                retry_after = None
            else:
                self.metrics.inc("service.worker_crashes")
                code, message = wire.E_WORKER_CRASHED, (
                    f"worker kept failing after "
                    f"{self.config.retries + 1} attempt(s): {exc}"
                )
                retry_after = self._retry_after()
            self.metrics.inc(f"service.errors.{code}")
            self._log(
                "request-failed", slot=slot, id=str(request.id),
                method=request.method, code=code,
            )
            await conn.send(
                wire.error_response(
                    request.id, code, message, retry_after_s=retry_after
                ),
                max_bytes,
            )
            return
        finally:
            self._in_flight -= 1
            self._observe_latency(time.monotonic() - t0)
        if envelope.get("ok"):
            self.metrics.inc("service.responses_ok")
            response = wire.ok_response(request.id, envelope["result"])
        else:
            error = envelope.get("error") or {}
            code = error.get("code", wire.E_INTERNAL)
            self.metrics.inc("service.errors_total")
            self.metrics.inc(f"service.errors.{code}")
            response = wire.error_response(
                request.id, code, error.get("message", "request failed")
            )
        await conn.send(response, max_bytes)


def serve(config: ServiceConfig) -> int:
    """Run the daemon to completion (the ``repro-sched serve`` body)."""
    service = SchedulerService(config)
    try:
        return asyncio.run(service.run())
    except KeyboardInterrupt:  # pragma: no cover - non-unix fallback
        return 0
