"""Blocking client for the scheduler service (and ``repro-sched call``).

:class:`ServiceClient` speaks the :mod:`repro.service.protocol` framing
over a plain TCP socket — synchronous on purpose, so scripts, tests and
the CLI can drive the asyncio daemon without owning an event loop.  It
understands the service's robustness vocabulary: :meth:`call` returns
the raw validated response, while :meth:`call_checked` unwraps results,
raises typed errors, and (optionally) honors ``retry_after_s`` hints for
the retryable codes (``overloaded``/``shutting_down``/``worker_crashed``).

The client never retries *non*-retryable errors and never resends a
request whose response arrived — retrying is safe regardless because
every method is a pure function of its params.
"""

from __future__ import annotations

import json
import socket
import struct
import time
from pathlib import Path
from typing import Dict, Optional, Union

from . import protocol as wire
from .server import STATE_NAME

__all__ = [
    "ServiceClient",
    "ServiceError",
    "RetryableServiceError",
    "locate_service",
]


class ServiceError(RuntimeError):
    """The service answered with a structured error response."""

    def __init__(self, code: str, message: str,
                 retry_after_s: Optional[float] = None) -> None:
        super().__init__(f"{code}: {message}")
        self.code = code
        self.message = message
        self.retry_after_s = retry_after_s


class RetryableServiceError(ServiceError):
    """An error from :data:`repro.service.protocol.RETRYABLE_CODES` —
    the same request may succeed if resubmitted later."""


def locate_service(state_dir: Union[str, Path]) -> Dict:
    """Read a daemon's ``SERVICE.json`` to find its address.

    Raises :class:`ValueError` (→ CLI exit 2) when the file is missing,
    corrupt, or describes a stopped daemon.
    """
    path = Path(state_dir) / STATE_NAME
    try:
        with open(path, "r", encoding="utf-8") as fh:
            state = json.load(fh)
    except OSError as exc:
        raise ValueError(
            f"no service state at {path} (is the daemon running?): {exc}"
        ) from exc
    except json.JSONDecodeError as exc:
        raise ValueError(f"corrupt service state {path}: {exc}") from exc
    if not isinstance(state, dict):
        raise ValueError(f"corrupt service state {path}: not a JSON object")
    host, port = state.get("host"), state.get("port")
    if not isinstance(host, str) or not isinstance(port, int) \
            or isinstance(port, bool) or not (0 < port < 65536):
        raise ValueError(
            f"corrupt service state {path}: no usable host/port"
        )
    if state.get("status") == "stopped":
        raise ValueError(
            f"service at {path} is stopped (exited cleanly); restart it "
            f"with 'repro-sched serve'"
        )
    return state


class ServiceClient:
    """One connection to the daemon; usable as a context manager."""

    def __init__(self, host: str, port: int, timeout: float = 60.0,
                 max_frame_bytes: int = wire.DEFAULT_MAX_FRAME_BYTES) -> None:
        self.host = host
        self.port = port
        self.timeout = timeout
        self.max_frame_bytes = max_frame_bytes
        self._sock: Optional[socket.socket] = None
        self._next_id = 0

    @classmethod
    def from_state_dir(cls, state_dir: Union[str, Path],
                       timeout: float = 60.0) -> "ServiceClient":
        state = locate_service(state_dir)
        return cls(state["host"], state["port"], timeout=timeout)

    # -- connection management ------------------------------------------

    def connect(self) -> "ServiceClient":
        if self._sock is None:
            sock = socket.create_connection(
                (self.host, self.port), timeout=self.timeout
            )
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            self._sock = sock
        return self

    def close(self) -> None:
        if self._sock is not None:
            try:
                self._sock.close()
            finally:
                self._sock = None

    def __enter__(self) -> "ServiceClient":
        return self.connect()

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- framing --------------------------------------------------------

    def _recv_exactly(self, n: int) -> bytes:
        assert self._sock is not None
        chunks = []
        remaining = n
        while remaining:
            chunk = self._sock.recv(remaining)
            if not chunk:
                raise ConnectionError(
                    "service closed the connection mid-frame"
                )
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def send_payload(self, payload: Dict) -> None:
        """Send one raw frame (the smoke battery uses this to send
        deliberately invalid payloads)."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(wire.encode_frame(payload, self.max_frame_bytes))

    def send_raw(self, data: bytes) -> None:
        """Send arbitrary bytes — for injecting corrupt frames in tests."""
        self.connect()
        assert self._sock is not None
        self._sock.sendall(data)

    def recv_response(self) -> Dict:
        """Read and validate one response frame."""
        self.connect()
        header = self._recv_exactly(wire.HEADER_SIZE)
        (length,) = struct.unpack(">I", header)
        if length == 0 or length > self.max_frame_bytes:
            raise ConnectionError(
                f"service sent an implausible frame length {length}"
            )
        body = self._recv_exactly(length)
        return wire.validate_response(wire.decode_payload(body))

    # -- request API ----------------------------------------------------

    def call(self, method: str, params: Optional[Dict] = None,
             deadline_s: Optional[float] = None,
             req_id: Union[str, int, None] = None) -> Dict:
        """One request/response round-trip; returns the raw response."""
        if req_id is None:
            self._next_id += 1
            req_id = self._next_id
        self.send_payload(
            wire.make_request(req_id, method, params, deadline_s)
        )
        return self.recv_response()

    def call_checked(self, method: str, params: Optional[Dict] = None,
                     deadline_s: Optional[float] = None,
                     max_retries: int = 0) -> Dict:
        """Call and unwrap: the ``result`` object, or a typed error.

        *max_retries* > 0 resubmits after retryable errors, sleeping the
        service's ``retry_after_s`` hint (capped at 5s) between attempts.
        """
        attempt = 0
        while True:
            response = self.call(method, params, deadline_s)
            if response["ok"]:
                return response["result"]
            error = response["error"]
            code = error["code"]
            exc_type = (
                RetryableServiceError if code in wire.RETRYABLE_CODES
                else ServiceError
            )
            exc = exc_type(
                code, error.get("message", ""), error.get("retry_after_s")
            )
            if not isinstance(exc, RetryableServiceError) \
                    or attempt >= max_retries:
                raise exc
            attempt += 1
            time.sleep(min(exc.retry_after_s or 0.1, 5.0))

    def ping(self) -> Dict:
        return self.call_checked("ping")

    def status(self) -> Dict:
        return self.call_checked("status")
