"""Supervised serve-smoke battery (``make serve-smoke``).

Starts a real daemon as a subprocess, then attacks it the way the ISSUE's
acceptance criteria demand: concurrent well-formed requests, malformed
frames, injected worker crashes and hangs, deadline overruns, an
admission-queue flood, and finally a SIGTERM drain.  The invariant under
all of it: **every well-formed request gets either a correct result —
validated bit-identical to a direct in-process ``solve_srj`` call — or a
structured error response**, the connection loop survives bad frames,
and the daemon drains and exits 0.

The injected-fault phase replays a schedule derived from a seeded
:class:`repro.faults.FaultPlan` via :func:`repro.faults.injection_schedule`
(processor crash → worker crash, capacity dip → hanging worker, job
abort → malformed frame, restore → recovery probe), so the battery is
deterministic and its fault mix follows the paper's fault vocabulary.

Run directly::

    PYTHONPATH=src python -m repro.service.smoke [--dir .repro-service-smoke]

Exits 0 when every check passes; on failure prints the failed check and
the daemon's log tail, and exits 1.  The daemon's state directory (log,
heartbeat, checkpoint files) is left behind as the CI artifact.
"""

from __future__ import annotations

import argparse
import json
import random
import shutil
import signal
import subprocess
import sys
import time
from fractions import Fraction
from pathlib import Path
from typing import Dict

from . import protocol as wire
from .client import RetryableServiceError, ServiceClient, ServiceError
from .server import CHECKPOINT_NAME, HEARTBEAT_NAME, LOG_NAME, STATE_NAME

__all__ = ["main", "run_battery"]

#: seed of the fault-plan-derived injection phase (any fixed value works;
#: chosen once so the battery replays the same mix forever)
SMOKE_SEED = 20170722

#: workload used by all correctness checks (small enough to solve in ms)
_WORKLOAD = {"family": "uniform", "m": 4, "n": 12, "seed": 3}


class SmokeFailure(AssertionError):
    """One battery check failed."""


def _check(condition: bool, message: str) -> None:
    if not condition:
        raise SmokeFailure(message)


def _note(message: str) -> None:
    print(f"serve-smoke: {message}", flush=True)


# ---------------------------------------------------------------------------
# Daemon supervision
# ---------------------------------------------------------------------------


class _Daemon:
    """The daemon under test, supervised as a subprocess."""

    def __init__(self, state_dir: Path, log_path: Path) -> None:
        self.state_dir = state_dir
        self.log_path = log_path
        self._log_fh = open(log_path, "wb")
        self.proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--state-dir", str(state_dir),
                "--host", "127.0.0.1", "--port", "0",
                "--workers", "1", "--queue-limit", "1",
                "--default-deadline", "20",
                "--retries", "1", "--backoff", "0.05",
                "--allow-test-faults",
                "--heartbeat-interval", "0.5",
            ],
            stdout=self._log_fh,
            stderr=subprocess.STDOUT,
        )

    def wait_serving(self, timeout: float = 30.0) -> Dict:
        """Poll SERVICE.json until the daemon reports itself serving."""
        deadline = time.monotonic() + timeout
        path = self.state_dir / STATE_NAME
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise SmokeFailure(
                    f"daemon exited with status {self.proc.returncode} "
                    f"before serving (see {self.log_path})"
                )
            try:
                with open(path, "r", encoding="utf-8") as fh:
                    state = json.load(fh)
                if state.get("status") == "serving" and state.get("port"):
                    return state
            except (OSError, ValueError):
                pass
            time.sleep(0.05)
        raise SmokeFailure(f"daemon did not start serving within {timeout}s")

    def sigterm(self) -> None:
        self.proc.send_signal(signal.SIGTERM)

    def wait_exit(self, timeout: float = 30.0) -> int:
        try:
            return self.proc.wait(timeout=timeout)
        except subprocess.TimeoutExpired:
            self.proc.kill()
            self.proc.wait()
            raise SmokeFailure(
                f"daemon did not exit within {timeout}s of SIGTERM"
            )

    def cleanup(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait()
        self._log_fh.close()

    def log_tail(self, lines: int = 40) -> str:
        self._log_fh.flush()
        try:
            text = self.log_path.read_text(encoding="utf-8", errors="replace")
        except OSError:
            return "<no log>"
        return "\n".join(text.splitlines()[-lines:])


# ---------------------------------------------------------------------------
# Reference results (computed in-process, bit-identical contract)
# ---------------------------------------------------------------------------


def _direct_solve() -> Dict:
    """What the service *must* return for ``_WORKLOAD``: a direct
    ``solve_srj`` call on the identically generated instance."""
    from ..core.bounds import makespan_lower_bound
    from ..engine.api import solve_srj
    from ..workloads import make_instance

    rng = random.Random(_WORKLOAD["seed"])
    instance = make_instance(
        _WORKLOAD["family"], rng, _WORKLOAD["m"], _WORKLOAD["n"]
    )
    result = solve_srj(instance, backend="auto")
    lb = makespan_lower_bound(instance)
    return {
        "makespan": result.makespan,
        "lower_bound": str(lb),
        "ratio": float(Fraction(result.makespan) / lb) if lb else None,
        "total_waste": str(result.total_waste),
        "completion_times": {
            str(j): t for j, t in sorted(result.completion_times.items())
        },
    }


def _assert_solve_matches(result: Dict, reference: Dict, where: str) -> None:
    for key, want in reference.items():
        _check(
            result.get(key) == want,
            f"{where}: field {key!r} differs from the direct solve_srj "
            f"call: service={result.get(key)!r} direct={want!r}",
        )


# ---------------------------------------------------------------------------
# Battery phases
# ---------------------------------------------------------------------------


def _phase_basics(client: ServiceClient, reference: Dict) -> None:
    pong = client.ping()
    _check(pong.get("pong") is True, "ping did not pong")
    _check(
        pong.get("protocol") == wire.PROTOCOL_VERSION,
        f"daemon speaks protocol {pong.get('protocol')}, "
        f"expected {wire.PROTOCOL_VERSION}",
    )
    result = client.call_checked("solve", dict(_WORKLOAD))
    _assert_solve_matches(result, reference, "solve")
    sim = client.call_checked(
        "simulate", {**_WORKLOAD, "policy": "window"}
    )
    _check(
        isinstance(sim.get("makespan"), int) and sim["makespan"] > 0,
        "simulate returned no makespan",
    )
    stats = client.call_checked("stats", dict(_WORKLOAD))
    _check(stats.get("valid") is True, "stats validity cross-check failed")
    _check(
        stats.get("makespan") == reference["makespan"],
        "stats makespan differs from the direct solve",
    )
    status = client.status()
    _check(
        status.get("protocol") == wire.PROTOCOL_VERSION
        and isinstance(status.get("metrics"), dict),
        "status response lacks protocol/metrics",
    )
    _note("basics: ping/solve/simulate/stats OK (solve bit-identical)")


def _phase_malformed_isolation(host: str, port: int) -> None:
    """Bad frames must never kill the connection loop (non-fatal) and
    must close it cleanly on stream desync (fatal)."""
    with ServiceClient(host, port, timeout=30.0) as client:
        # complete frame, invalid JSON payload -> non-fatal error
        client.send_raw(len(b"{oops").to_bytes(4, "big") + b"{oops")
        resp = client.recv_response()
        _check(
            resp["ok"] is False
            and resp["error"]["code"] == wire.E_MALFORMED_FRAME,
            f"garbage payload answered {resp!r}, "
            f"expected {wire.E_MALFORMED_FRAME}",
        )
        # complete frame, JSON but not an object -> non-fatal error
        client.send_payload([1, 2, 3])  # type: ignore[arg-type]
        resp = client.recv_response()
        _check(
            resp["error"]["code"] == wire.E_MALFORMED_FRAME,
            "non-object payload not rejected as malformed_frame",
        )
        # schema violations -> structured per-request errors
        for payload, want in [
            ({"v": 99, "id": 1, "method": "ping"},
             wire.E_UNSUPPORTED_VERSION),
            ({"v": 1, "id": 2, "method": "warp"}, wire.E_UNKNOWN_METHOD),
            ({"v": 1, "id": 3, "method": "ping", "deadline_s": -1},
             wire.E_INVALID_REQUEST),
            ({"v": 1, "id": 4, "method": "solve",
              "params": {"backend": "quantum"}}, wire.E_INVALID_PARAMS),
        ]:
            client.send_payload(payload)
            resp = client.recv_response()
            _check(
                resp["ok"] is False and resp["error"]["code"] == want,
                f"payload {payload!r} answered "
                f"{resp.get('error', {}).get('code')!r}, expected {want!r}",
            )
        # ...and the very same connection still serves good requests
        pong = client.call_checked("ping")
        _check(
            pong.get("pong") is True,
            "connection did not survive the malformed frames",
        )
    # corrupt header (implausible length) -> fatal: error then close
    with ServiceClient(host, port, timeout=30.0) as client:
        client.send_raw(b"\xff\xff\xff\xff" + b"junk")
        resp = client.recv_response()
        _check(
            resp["error"]["code"] == wire.E_FRAME_TOO_LARGE,
            "corrupt header not rejected as frame_too_large",
        )
        try:
            client.call("ping")
        except (ConnectionError, OSError):
            pass
        else:
            raise SmokeFailure(
                "connection stayed open after an unsynchronizable header"
            )
    _note("malformed-request isolation: 6 bad frames, connection survived")


def _phase_crash_recovery(
    client: ServiceClient, state_dir: Path, reference: Dict
) -> None:
    # crash once: the worker dies mid-request, the retry succeeds and the
    # result must still be bit-identical to the direct call
    token = state_dir / "crash-once.token"
    result = client.call_checked(
        "solve",
        {**_WORKLOAD,
         "_fault": {"kind": "crash_once", "token": str(token)}},
    )
    _assert_solve_matches(result, reference, "solve after worker crash")
    _check(token.exists(), "crash_once fault did not actually fire")
    # persistent crash: retries exhausted -> structured retryable error
    try:
        client.call_checked("solve", {**_WORKLOAD, "_fault": {"kind": "crash"}})
    except RetryableServiceError as exc:
        _check(
            exc.code == wire.E_WORKER_CRASHED,
            f"persistent crash answered {exc.code!r}",
        )
    else:
        raise SmokeFailure("persistently crashing worker reported success")
    # the injected-handler-bug path: structured internal, not a hang/crash
    try:
        client.call_checked("solve", {**_WORKLOAD, "_fault": {"kind": "error"}})
    except ServiceError as exc:
        _check(exc.code == wire.E_INTERNAL,
               f"handler error answered {exc.code!r}")
    else:
        raise SmokeFailure("injected handler error reported success")
    _note("worker-crash recovery: re-run OK (bit-identical), "
          "persistent crash -> worker_crashed")


def _phase_deadline(client: ServiceClient, reference: Dict) -> None:
    t0 = time.monotonic()
    try:
        client.call_checked(
            "solve",
            {**_WORKLOAD, "_fault": {"kind": "hang", "seconds": 30}},
            deadline_s=1.0,
        )
    except ServiceError as exc:
        _check(
            exc.code == wire.E_DEADLINE_EXCEEDED,
            f"over-deadline request answered {exc.code!r}",
        )
    else:
        raise SmokeFailure("hung worker's request reported success")
    elapsed = time.monotonic() - t0
    _check(
        elapsed < 15.0,
        f"deadline response took {elapsed:.1f}s — worker not reclaimed",
    )
    # the slot was reclaimed: the next request on the same connection works
    result = client.call_checked("solve", dict(_WORKLOAD))
    _assert_solve_matches(result, reference, "solve after deadline overrun")
    _note(f"deadlines: hung worker cancelled after {elapsed:.1f}s, "
          f"slot reclaimed")


def _phase_overload(host: str, port: int) -> None:
    """Fill the single worker slot and the length-1 queue, then watch the
    next request get shed with a retry hint."""
    hang = {**_WORKLOAD, "_fault": {"kind": "hang", "seconds": 1.2}}
    with ServiceClient(host, port, timeout=30.0) as busy, \
            ServiceClient(host, port, timeout=30.0) as queued, \
            ServiceClient(host, port, timeout=30.0) as shed:
        busy.send_payload(wire.make_request("busy", "solve", hang, 15.0))
        time.sleep(0.4)  # the dispatcher takes it; the slot is now busy
        queued.send_payload(wire.make_request("queued", "solve", hang, 15.0))
        time.sleep(0.2)  # it sits in the admission queue (depth 1 = full)
        shed_resp = shed.call("solve", dict(_WORKLOAD))
        _check(
            shed_resp["ok"] is False
            and shed_resp["error"]["code"] == wire.E_OVERLOADED,
            f"flood request answered {shed_resp!r}, expected overloaded",
        )
        retry_after = shed_resp["error"].get("retry_after_s")
        _check(
            isinstance(retry_after, (int, float)) and retry_after > 0,
            f"overloaded response carries no retry_after_s hint "
            f"({shed_resp['error']!r})",
        )
        # load-shedding protects, it does not corrupt: both admitted
        # requests still complete correctly
        for client, label in [(busy, "busy"), (queued, "queued")]:
            resp = wire.validate_response(client.recv_response())
            _check(
                resp["ok"] is True and resp["id"] == label,
                f"admitted request {label!r} failed under overload: {resp!r}",
            )
        # and a post-flood retry (honoring the hint) succeeds
        time.sleep(min(float(retry_after), 5.0))
        ok = shed.call_checked("ping")
        _check(ok.get("pong") is True, "daemon unreachable after the flood")
    _note(f"admission control: shed with retry_after_s={retry_after}, "
          f"admitted requests unharmed")


def _phase_fault_plan_battery(
    host: str, port: int, state_dir: Path, reference: Dict
) -> None:
    """Replay a FaultPlan-derived injection schedule; every well-formed
    request must end in a correct result or a structured error."""
    from ..faults import FaultPlan, injection_schedule

    plan = FaultPlan.random(
        SMOKE_SEED, m=4, n_jobs=_WORKLOAD["n"], horizon=50, events=6
    )
    schedule = injection_schedule(plan)
    _check(bool(schedule), "fault plan produced an empty schedule")
    outcomes = []
    with ServiceClient(host, port, timeout=60.0) as client:
        for i, injection in enumerate(schedule):
            kind = injection["kind"]
            if kind == "worker_crash":
                token = state_dir / f"plan-crash-{i}.token"
                result = client.call_checked(
                    "solve",
                    {**_WORKLOAD,
                     "_fault": {"kind": "crash_once", "token": str(token)}},
                )
                _assert_solve_matches(
                    result, reference, f"injection {i} (worker_crash)"
                )
            elif kind == "slow":
                try:
                    result = client.call_checked(
                        "solve",
                        {**_WORKLOAD,
                         "_fault": {"kind": "hang", "seconds": 0.3}},
                        deadline_s=10.0,
                    )
                    _assert_solve_matches(
                        result, reference, f"injection {i} (slow)"
                    )
                except ServiceError as exc:
                    _check(
                        exc.code in wire.ERROR_CODES,
                        f"injection {i}: unstructured error {exc.code!r}",
                    )
            elif kind == "malformed":
                client.send_raw(
                    len(b"\x00garbage").to_bytes(4, "big") + b"\x00garbage"
                )
                resp = client.recv_response()
                _check(
                    resp["error"]["code"] == wire.E_MALFORMED_FRAME,
                    f"injection {i}: malformed frame not isolated",
                )
            else:  # recover
                pong = client.call_checked("ping")
                _check(pong.get("pong") is True,
                       f"injection {i}: recovery probe failed")
            outcomes.append(kind)
    _note(f"fault-plan battery (seed {SMOKE_SEED}): "
          f"{', '.join(outcomes)} — all isolated")


def _phase_drain(daemon: _Daemon, host: str, port: int) -> None:
    """SIGTERM with one request in flight and one queued: the in-flight
    one finishes, the queued one is checkpointed, the daemon exits 0."""
    client = ServiceClient(host, port, timeout=30.0)
    client.connect()
    client.send_payload(wire.make_request(
        "inflight", "solve",
        {**_WORKLOAD, "_fault": {"kind": "hang", "seconds": 1.0}}, 15.0,
    ))
    time.sleep(0.4)  # dispatched: now in flight
    client.send_payload(
        wire.make_request("parked", "solve", dict(_WORKLOAD), 15.0)
    )
    time.sleep(0.2)  # parked in the admission queue
    daemon.sigterm()
    first = wire.validate_response(client.recv_response())
    _check(
        first["id"] == "inflight" and first["ok"] is True,
        f"in-flight request did not finish during drain: {first!r}",
    )
    second = wire.validate_response(client.recv_response())
    _check(
        second["id"] == "parked" and second["ok"] is False
        and second["error"]["code"] == wire.E_SHUTTING_DOWN,
        f"queued request not answered shutting_down: {second!r}",
    )
    client.close()
    status = daemon.wait_exit()
    _check(status == 0, f"daemon exited {status} after SIGTERM, expected 0")
    checkpoint = daemon.state_dir / CHECKPOINT_NAME
    _check(checkpoint.is_file(), "drain wrote no SERVICE_CHECKPOINT.jsonl")
    entries = [
        json.loads(line)
        for line in checkpoint.read_text(encoding="utf-8").splitlines()
        if line.strip()
    ]
    _check(
        any(e.get("id") == "parked" for e in entries),
        f"queued request missing from the drain checkpoint: {entries!r}",
    )
    with open(daemon.state_dir / STATE_NAME, "r", encoding="utf-8") as fh:
        final_state = json.load(fh)
    _check(
        final_state.get("status") == "stopped",
        f"final state is {final_state.get('status')!r}, expected 'stopped'",
    )
    _check(
        (daemon.state_dir / HEARTBEAT_NAME).is_file(),
        "daemon emitted no heartbeat file",
    )
    _note("graceful drain: in-flight finished, queued checkpointed, exit 0")


# ---------------------------------------------------------------------------
# Entry point
# ---------------------------------------------------------------------------


def run_battery(work_dir: Path) -> None:
    """The full battery against one supervised daemon; raises
    :class:`SmokeFailure` on the first violated invariant."""
    state_dir = work_dir / "daemon"
    daemon = _Daemon(state_dir, work_dir / "serve-smoke.log")
    try:
        state = daemon.wait_serving()
        host, port = state["host"], state["port"]
        _note(f"daemon up: pid {state['pid']} on {host}:{port}")
        reference = _direct_solve()
        with ServiceClient(host, port, timeout=60.0) as client:
            _phase_basics(client, reference)
        _phase_malformed_isolation(host, port)
        with ServiceClient(host, port, timeout=60.0) as client:
            _phase_crash_recovery(client, state_dir, reference)
            _phase_deadline(client, reference)
        _phase_overload(host, port)
        _phase_fault_plan_battery(host, port, state_dir, reference)
        _phase_drain(daemon, host, port)
        # post-mortem: the log artifact must carry the full story
        log = (state_dir / LOG_NAME)
        _check(log.is_file(), "daemon wrote no structured log")
    except SmokeFailure:
        print("--- daemon log tail ---", file=sys.stderr)
        print(daemon.log_tail(), file=sys.stderr)
        raise
    finally:
        daemon.cleanup()


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.smoke", description=__doc__
    )
    parser.add_argument(
        "--dir", default=".repro-service-smoke",
        help="working directory (wiped; left behind as the CI artifact)",
    )
    args = parser.parse_args(argv)
    work_dir = Path(args.dir)
    if work_dir.exists():
        shutil.rmtree(work_dir)
    work_dir.mkdir(parents=True)
    t0 = time.monotonic()
    try:
        run_battery(work_dir)
    except SmokeFailure as exc:
        print(f"serve-smoke: FAIL: {exc}", file=sys.stderr)
        return 1
    _note(f"all phases passed in {time.monotonic() - t0:.1f}s "
          f"(artifacts in {work_dir})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
