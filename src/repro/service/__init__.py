"""Scheduler as a service: the long-running ``repro-sched serve`` daemon.

The subsystem (docs/SERVICE.md has the full tour):

* :mod:`repro.service.protocol` — the length-prefixed JSON wire format:
  versioned request/response schemas, the closed set of structured error
  codes, framing that stays synchronized across malformed payloads;
* :mod:`repro.service.server` — the asyncio daemon: bounded admission
  queue with load-shedding, per-request deadlines, worker-crash
  recovery on the hardened ``parallel_map``, graceful SIGTERM drain
  with checkpointing, heartbeat/metrics telemetry via :mod:`repro.obs`;
* :mod:`repro.service.handlers` — worker-side request execution (pure,
  picklable, never raises — the malformed-request isolation contract);
* :mod:`repro.service.client` — the blocking client behind
  ``repro-sched call``, with typed retryable/permanent errors;
* :mod:`repro.service.smoke` — the supervised ``make serve-smoke``
  battery: injected crashes, hangs, malformed frames, floods, drain.

The daemon mirrors Uberun's master/daemon/protocol split: the event loop
is the master owning admission and deadlines, and each request executes
in a worker process so a crash or hang stays contained.
"""

from .client import (
    RetryableServiceError,
    ServiceClient,
    ServiceError,
    locate_service,
)
from .protocol import (
    ERROR_CODES,
    METHODS,
    PROTOCOL_VERSION,
    RETRYABLE_CODES,
    ProtocolError,
    Request,
)
from .server import SchedulerService, ServiceConfig, serve

__all__ = [
    "PROTOCOL_VERSION",
    "METHODS",
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "ProtocolError",
    "Request",
    "ServiceClient",
    "ServiceError",
    "RetryableServiceError",
    "locate_service",
    "SchedulerService",
    "ServiceConfig",
    "serve",
]
