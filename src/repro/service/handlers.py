"""Worker-side request execution: pure, picklable, never raises.

:func:`execute_request` is the one function the daemon hands to the
hardened :func:`repro.perf.parallel_map` — a **module-level** callable
(the ``worker-safe`` lint contract) that runs inside a worker process.
Its contract is the heart of malformed-request isolation: whatever the
params contain, it returns a structured ``{"ok": ...}`` envelope and
never lets an exception escape into the pool.  Exceptions would otherwise
count as "deterministic failures" and propagate out of ``parallel_map``;
only *infrastructure* failures (a crashed worker, a deadline timeout) are
allowed to surface, because those are exactly what the daemon's
retry/deadline machinery handles.

Handlers are pure functions of their params (all randomness is seeded),
so a retried request — after a worker crash — computes bit-identical
results, and responses are independent of which worker served them.

Test-fault injection (``--allow-test-faults`` only): a ``_fault`` param
makes the worker crash, hang or error *deterministically*, so the smoke
battery (:mod:`repro.service.smoke`) can exercise the daemon's recovery
paths with faults derived from :mod:`repro.faults` seeds.
"""

from __future__ import annotations

import os
import random
import time
from fractions import Fraction
from typing import Dict, Optional

from .protocol import E_INTERNAL, E_INVALID_PARAMS, E_UNKNOWN_METHOD

__all__ = ["execute_request", "FAULT_KINDS"]

#: injectable worker faults (see module docstring; smoke/self-test only)
FAULT_KINDS = ("crash", "crash_once", "hang", "error")

#: exit status of a deliberately crashed worker (distinct from signals)
CRASH_EXIT_STATUS = 3


# ---------------------------------------------------------------------------
# Param helpers (raise ValueError -> invalid_params envelope)
# ---------------------------------------------------------------------------


def _require_int(params: Dict, key: str, default=None, low: int = 1) -> int:
    value = params.get(key, default)
    if not isinstance(value, int) or isinstance(value, bool) or value < low:
        raise ValueError(f"param {key!r} must be an integer >= {low}")
    return value


def _build_instance(params: Dict):
    """The instance a request addresses: inline document or generated.

    ``instance={...}`` (the :mod:`repro.io` JSON format) wins; otherwise
    ``family``/``m``/``n``/``seed`` generate a workload exactly like the
    CLI does, so a service request and a local run agree bit-for-bit.
    """
    from ..io import instance_from_dict
    from ..workloads import make_instance

    doc = params.get("instance")
    if doc is not None:
        if not isinstance(doc, dict):
            raise ValueError("param 'instance' must be a JSON object")
        return instance_from_dict(doc)
    family = params.get("family", "uniform")
    if not isinstance(family, str):
        raise ValueError("param 'family' must be a string")
    m = _require_int(params, "m", default=8)
    n = _require_int(params, "n", default=50)
    seed = _require_int(params, "seed", default=0, low=0)
    rng = random.Random(seed)
    return make_instance(family, rng, m, n)


def _build_fault_plan(params: Dict, m: int, n_jobs: int):
    """Optional fault plan: inline ``fault_plan`` doc or ``fault_seed``."""
    from ..faults import FaultPlan

    doc = params.get("fault_plan")
    if doc is not None:
        if not isinstance(doc, dict):
            raise ValueError("param 'fault_plan' must be a JSON object")
        return FaultPlan.from_jsonable(doc)
    seed = params.get("fault_seed")
    if seed is None:
        return None
    if not isinstance(seed, int) or isinstance(seed, bool):
        raise ValueError("param 'fault_seed' must be an integer")
    return FaultPlan.random(
        seed,
        m=m,
        n_jobs=n_jobs,
        horizon=_require_int(params, "fault_horizon", default=100),
        events=_require_int(params, "fault_events", default=6, low=0),
    )


def _backend(params: Dict) -> str:
    from ..engine import BACKENDS

    backend = params.get("backend", "auto")
    if backend not in BACKENDS:
        raise ValueError(
            f"param 'backend' must be one of {sorted(BACKENDS)}"
        )
    return backend


def _completion_times(result) -> Dict[str, int]:
    return {str(j): t for j, t in sorted(result.completion_times.items())}


# ---------------------------------------------------------------------------
# Method handlers
# ---------------------------------------------------------------------------


def _handle_solve(params: Dict) -> Dict:
    """Listing-1 solve (or fault-injected run) of one instance."""
    from ..core.bounds import makespan_lower_bound
    from ..engine.api import solve_srj

    instance = _build_instance(params)
    backend = _backend(params)
    plan = _build_fault_plan(params, instance.m, instance.n)
    if plan is not None:
        from ..faults import run_with_faults, validate_faulted

        result = run_with_faults(instance, plan, backend=backend)
        report = validate_faulted(result)
        return {
            "m": instance.m,
            "n": instance.n,
            "backend": backend,
            "makespan": result.makespan,
            "fault_free_makespan": result.fault_free_makespan,
            "degradation": (
                None if result.degradation is None
                else str(result.degradation)
            ),
            "events_applied": result.n_applied(),
            "events_planned": len(result.plan),
            "aborted": sorted(result.aborted),
            "valid": report.ok,
            "violations": list(report.violations[:20]),
        }
    result = solve_srj(instance, backend=backend)
    lb = makespan_lower_bound(instance)
    return {
        "m": instance.m,
        "n": instance.n,
        "backend": backend,
        "makespan": result.makespan,
        "lower_bound": str(lb),
        "ratio": float(Fraction(result.makespan) / lb) if lb else None,
        "steps_full_jobs": result.steps_full_jobs,
        "steps_full_resource": result.steps_full_resource,
        "total_waste": str(result.total_waste),
        "completion_times": _completion_times(result),
    }


def _handle_simulate(params: Dict) -> Dict:
    """Step-wise simulator run under a built-in policy (+ optional faults)."""
    from ..simulator import (
        GreedyFillPolicy,
        ListSchedulingPolicy,
        SimulationEngine,
        SlidingWindowPolicy,
    )

    policies = {
        "window": SlidingWindowPolicy,
        "list": ListSchedulingPolicy,
        "greedy": GreedyFillPolicy,
    }
    name = params.get("policy", "window")
    if name not in policies:
        raise ValueError(
            f"param 'policy' must be one of {sorted(policies)}"
        )
    instance = _build_instance(params)
    plan = _build_fault_plan(params, instance.m, instance.n)
    engine = SimulationEngine(
        instance, policies[name](), fault_plan=plan
    )
    result = engine.run()
    return {
        "m": instance.m,
        "n": instance.n,
        "policy": name,
        "makespan": result.makespan,
        "completion_times": _completion_times(result),
        "aborted": {str(j): t for j, t in sorted(result.aborted.items())},
    }


def _handle_stats(params: Dict) -> Dict:
    """Solve with telemetry: metrics registry + validity cross-check."""
    from ..core.validate import validate_result
    from ..engine.api import solve_srj
    from ..obs import StatsObserver

    instance = _build_instance(params)
    backend = _backend(params)
    result = solve_srj(instance, backend=backend, collect_stats=True)
    metrics = result.stats
    report = validate_result(result, observer=StatsObserver(metrics))
    return {
        "m": instance.m,
        "n": instance.n,
        "backend": backend,
        "makespan": result.makespan,
        "valid": report.ok,
        "metrics": metrics.to_jsonable(),
    }


_HANDLERS = {
    "solve": _handle_solve,
    "simulate": _handle_simulate,
    "stats": _handle_stats,
}


# ---------------------------------------------------------------------------
# Test-fault injection
# ---------------------------------------------------------------------------


def _inject_fault(fault) -> None:
    """Apply one injected worker fault (smoke/self-test mode only)."""
    if not isinstance(fault, dict) or fault.get("kind") not in FAULT_KINDS:
        raise ValueError(
            f"param '_fault.kind' must be one of {list(FAULT_KINDS)}"
        )
    kind = fault["kind"]
    if kind == "crash":
        os._exit(CRASH_EXIT_STATUS)
    if kind == "crash_once":
        # crash only while the token file is absent: the retried attempt
        # (fresh worker) finds the token and proceeds -> demonstrates
        # single-request re-run recovery
        token = fault.get("token")
        if not isinstance(token, str) or not token:
            raise ValueError("param '_fault.token' must be a file path")
        try:
            fd = os.open(token, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
        except FileExistsError:
            return
        os.close(fd)
        os._exit(CRASH_EXIT_STATUS)
    if kind == "hang":
        seconds = fault.get("seconds", 30.0)
        if not isinstance(seconds, (int, float)) or seconds < 0:
            raise ValueError("param '_fault.seconds' must be >= 0")
        time.sleep(float(seconds))
        return
    # kind == "error": a handler bug stand-in -> structured E_INTERNAL
    raise RuntimeError("injected handler error (_fault kind 'error')")


# ---------------------------------------------------------------------------
# The pool entry point
# ---------------------------------------------------------------------------


def _error_envelope(code: str, message: str) -> Dict:
    return {"ok": False, "error": {"code": code, "message": message}}


def execute_request(task: Dict) -> Dict:
    """Run one request in a worker process; always returns an envelope.

    *task* carries ``method``, ``params`` and ``allow_faults``.  Returns
    ``{"ok": True, "result": ...}`` or ``{"ok": False, "error": {...}}``
    — parameter problems map to ``invalid_params``, anything unexpected
    to ``internal``.  The only ways this function does *not* return are
    the infrastructure failures the daemon is built to absorb: the
    process dying or the deadline expiring.
    """
    method = task.get("method")
    params = task.get("params") or {}
    handler = _HANDLERS.get(method)
    if handler is None:
        return _error_envelope(
            E_UNKNOWN_METHOD, f"no worker handler for method {method!r}"
        )
    try:
        fault = params.get("_fault")
        if fault is not None:
            if not task.get("allow_faults"):
                raise ValueError(
                    "param '_fault' requires the daemon to run with "
                    "--allow-test-faults"
                )
            _inject_fault(fault)
        clean = {k: v for k, v in params.items() if k != "_fault"}
        return {"ok": True, "result": handler(clean)}
    except (ValueError, TypeError, KeyError) as exc:
        return _error_envelope(
            E_INVALID_PARAMS, f"{method}: {exc}"
        )
    except Exception as exc:  # noqa: BLE001 - the isolation contract
        return _error_envelope(
            E_INTERNAL, f"{method}: {type(exc).__name__}: {exc}"
        )
