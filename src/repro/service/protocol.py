"""Wire protocol of the scheduler service: length-prefixed JSON frames.

One frame is a 4-byte big-endian payload length followed by that many
bytes of UTF-8 JSON.  The framing makes the stream self-synchronizing at
frame granularity: a payload that fails to parse was still consumed
exactly (its length was known), so one bad frame never desynchronizes the
connection — only a corrupt *header* (an implausible length) or a torn
frame forces the connection closed.

Request schema (version ``1``)::

    {"v": 1, "id": 7, "method": "solve", "params": {...},
     "deadline_s": 5.0}            # deadline optional, seconds, relative

Response schema::

    {"v": 1, "id": 7, "ok": true,  "result": {...}}
    {"v": 1, "id": 7, "ok": false, "error": {"code": "overloaded",
     "message": "...", "retry_after_s": 0.5}}   # retry hint optional

``id`` is chosen by the client (string or int) and echoed verbatim, so
clients may pipeline requests on one connection and match responses by
id; responses can arrive out of order.  Error codes are the closed set in
:data:`ERROR_CODES` — clients dispatch on the code, never on the message.
Codes in :data:`RETRYABLE_CODES` mean the same request may succeed later
(honor ``retry_after_s`` when present); the rest are permanent for that
request.

This module is deliberately **pure**: framing, validation and schema
builders only — no sockets, no clocks, no process state (it is covered by
the ``derived-identity`` lint rule).  The server and client own all I/O
and timing.
"""

from __future__ import annotations

import asyncio
import json
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Union

__all__ = [
    "PROTOCOL_VERSION",
    "HEADER_SIZE",
    "DEFAULT_MAX_FRAME_BYTES",
    "WORK_METHODS",
    "INLINE_METHODS",
    "METHODS",
    "ERROR_CODES",
    "RETRYABLE_CODES",
    "E_MALFORMED_FRAME",
    "E_FRAME_TOO_LARGE",
    "E_UNSUPPORTED_VERSION",
    "E_INVALID_REQUEST",
    "E_UNKNOWN_METHOD",
    "E_INVALID_PARAMS",
    "E_OVERLOADED",
    "E_DEADLINE_EXCEEDED",
    "E_WORKER_CRASHED",
    "E_SHUTTING_DOWN",
    "E_INTERNAL",
    "ProtocolError",
    "Request",
    "encode_frame",
    "decode_payload",
    "read_frame",
    "write_frame",
    "make_request",
    "ok_response",
    "error_response",
    "validate_request",
    "validate_response",
]

#: bump when the request/response schema changes incompatibly
PROTOCOL_VERSION = 1

#: frame header: one unsigned 32-bit big-endian payload length
HEADER_SIZE = 4
_HEADER = struct.Struct(">I")

#: refuse frames larger than this (a corrupt header usually decodes to a
#: huge length; treating it as fatal keeps a garbage byte stream from
#: stalling the reader on a multi-gigabyte "payload")
DEFAULT_MAX_FRAME_BYTES = 16 * 1024 * 1024

# --- methods ---------------------------------------------------------------

#: methods dispatched onto the worker pool (each runs in its own process)
WORK_METHODS = frozenset({"solve", "simulate", "stats"})

#: methods the daemon answers inline on the event loop (cheap reads)
INLINE_METHODS = frozenset({"ping", "status", "sweep_status"})

METHODS = WORK_METHODS | INLINE_METHODS

# --- error codes -----------------------------------------------------------

E_MALFORMED_FRAME = "malformed_frame"      #: payload was not a JSON object
E_FRAME_TOO_LARGE = "frame_too_large"      #: header length over the limit
E_UNSUPPORTED_VERSION = "unsupported_version"
E_INVALID_REQUEST = "invalid_request"      #: schema violation (id/deadline)
E_UNKNOWN_METHOD = "unknown_method"
E_INVALID_PARAMS = "invalid_params"        #: method rejected its params
E_OVERLOADED = "overloaded"                #: admission queue full — shed
E_DEADLINE_EXCEEDED = "deadline_exceeded"  #: deadline hit before/while run
E_WORKER_CRASHED = "worker_crashed"        #: worker died, retries exhausted
E_SHUTTING_DOWN = "shutting_down"          #: daemon is draining
E_INTERNAL = "internal"                    #: handler bug; request failed

ERROR_CODES = frozenset({
    E_MALFORMED_FRAME, E_FRAME_TOO_LARGE, E_UNSUPPORTED_VERSION,
    E_INVALID_REQUEST, E_UNKNOWN_METHOD, E_INVALID_PARAMS, E_OVERLOADED,
    E_DEADLINE_EXCEEDED, E_WORKER_CRASHED, E_SHUTTING_DOWN, E_INTERNAL,
})

#: the request itself was fine — resubmitting it later may succeed
RETRYABLE_CODES = frozenset({
    E_OVERLOADED, E_SHUTTING_DOWN, E_WORKER_CRASHED,
})


class ProtocolError(ValueError):
    """A frame or payload violated the protocol.

    *fatal* marks errors after which the byte stream cannot be trusted
    (corrupt header, oversized frame, torn frame): the connection must be
    closed.  Non-fatal errors consumed a complete frame, so the
    connection keeps serving subsequent frames.
    """

    def __init__(self, code: str, message: str, fatal: bool = False) -> None:
        super().__init__(message)
        self.code = code
        self.message = message
        self.fatal = fatal


@dataclass(frozen=True)
class Request:
    """A validated request (see :func:`validate_request`)."""

    id: Union[str, int]
    method: str
    params: Dict
    deadline_s: Optional[float]


# ---------------------------------------------------------------------------
# Framing
# ---------------------------------------------------------------------------


def encode_frame(
    payload: Dict, max_bytes: int = DEFAULT_MAX_FRAME_BYTES
) -> bytes:
    """Serialize *payload* into one length-prefixed frame."""
    body = json.dumps(
        payload, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")
    if len(body) > max_bytes:
        raise ProtocolError(
            E_FRAME_TOO_LARGE,
            f"frame of {len(body)} bytes exceeds the {max_bytes}-byte limit",
            fatal=True,
        )
    return _HEADER.pack(len(body)) + body


def decode_payload(body: bytes) -> Dict:
    """Parse one frame's payload; must be a JSON object."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(
            E_MALFORMED_FRAME, f"payload is not valid JSON: {exc}"
        ) from exc
    if not isinstance(payload, dict):
        raise ProtocolError(
            E_MALFORMED_FRAME,
            f"payload must be a JSON object, got {type(payload).__name__}",
        )
    return payload


async def read_frame(
    reader: asyncio.StreamReader,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> Optional[Dict]:
    """Read one frame; ``None`` on clean EOF (no partial header).

    Raises :class:`ProtocolError` — fatal for corrupt headers and torn
    frames, non-fatal for complete frames with malformed payloads.
    """
    try:
        header = await reader.readexactly(HEADER_SIZE)
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise ProtocolError(
            E_MALFORMED_FRAME,
            f"connection closed mid-header ({len(exc.partial)} of "
            f"{HEADER_SIZE} bytes)",
            fatal=True,
        ) from exc
    (length,) = _HEADER.unpack(header)
    if length == 0 or length > max_bytes:
        raise ProtocolError(
            E_FRAME_TOO_LARGE,
            f"frame header announces {length} bytes "
            f"(limit {max_bytes}); closing the unsynchronized stream",
            fatal=True,
        )
    try:
        body = await reader.readexactly(length)
    except asyncio.IncompleteReadError as exc:
        raise ProtocolError(
            E_MALFORMED_FRAME,
            f"connection closed mid-frame ({len(exc.partial)} of "
            f"{length} bytes)",
            fatal=True,
        ) from exc
    return decode_payload(body)


async def write_frame(
    writer: asyncio.StreamWriter,
    payload: Dict,
    max_bytes: int = DEFAULT_MAX_FRAME_BYTES,
) -> None:
    """Encode and send one frame, waiting for the transport to drain."""
    writer.write(encode_frame(payload, max_bytes))
    await writer.drain()


# ---------------------------------------------------------------------------
# Schema builders
# ---------------------------------------------------------------------------


def make_request(
    req_id: Union[str, int],
    method: str,
    params: Optional[Dict] = None,
    deadline_s: Optional[float] = None,
) -> Dict:
    """Build a request payload (client side)."""
    payload: Dict = {"v": PROTOCOL_VERSION, "id": req_id, "method": method}
    if params:
        payload["params"] = params
    if deadline_s is not None:
        payload["deadline_s"] = deadline_s
    return payload


def ok_response(req_id: Union[str, int, None], result: Dict) -> Dict:
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": True,
            "result": result}


def error_response(
    req_id: Union[str, int, None],
    code: str,
    message: str,
    retry_after_s: Optional[float] = None,
) -> Dict:
    if code not in ERROR_CODES:
        raise ValueError(f"unknown error code {code!r}")
    error: Dict = {"code": code, "message": message}
    if retry_after_s is not None:
        error["retry_after_s"] = retry_after_s
    return {"v": PROTOCOL_VERSION, "id": req_id, "ok": False, "error": error}


# ---------------------------------------------------------------------------
# Validation
# ---------------------------------------------------------------------------


def salvage_id(payload: Dict) -> Union[str, int, None]:
    """Best-effort request id from an invalid payload, for the error
    response — only ids of the documented types are echoed back."""
    req_id = payload.get("id")
    return req_id if isinstance(req_id, (str, int)) else None


def validate_request(payload: Dict) -> Request:
    """Check *payload* against the request schema; raises
    :class:`ProtocolError` (never fatal — the frame itself was fine)."""
    version = payload.get("v")
    if version != PROTOCOL_VERSION:
        raise ProtocolError(
            E_UNSUPPORTED_VERSION,
            f"protocol version {version!r} not supported "
            f"(speak v{PROTOCOL_VERSION})",
        )
    req_id = payload.get("id")
    if not isinstance(req_id, (str, int)) or isinstance(req_id, bool):
        raise ProtocolError(
            E_INVALID_REQUEST, "request 'id' must be a string or an integer"
        )
    method = payload.get("method")
    if not isinstance(method, str):
        raise ProtocolError(
            E_INVALID_REQUEST, "request 'method' must be a string"
        )
    if method not in METHODS:
        raise ProtocolError(
            E_UNKNOWN_METHOD,
            f"unknown method {method!r} "
            f"(choose from: {', '.join(sorted(METHODS))})",
        )
    params = payload.get("params", {})
    if not isinstance(params, dict):
        raise ProtocolError(
            E_INVALID_PARAMS, "request 'params' must be a JSON object"
        )
    deadline = payload.get("deadline_s")
    if deadline is not None:
        if not isinstance(deadline, (int, float)) or isinstance(
            deadline, bool
        ) or deadline <= 0:
            raise ProtocolError(
                E_INVALID_REQUEST,
                "request 'deadline_s' must be a positive number of seconds",
            )
        deadline = float(deadline)
    unknown = set(payload) - {"v", "id", "method", "params", "deadline_s"}
    if unknown:
        raise ProtocolError(
            E_INVALID_REQUEST,
            f"unknown request field(s): {', '.join(sorted(unknown))}",
        )
    return Request(
        id=req_id, method=method, params=params, deadline_s=deadline
    )


def validate_response(payload: Dict) -> Dict:
    """Check a response payload (client side); returns it unchanged."""
    if payload.get("v") != PROTOCOL_VERSION:
        raise ProtocolError(
            E_UNSUPPORTED_VERSION,
            f"response protocol version {payload.get('v')!r} not supported",
        )
    ok = payload.get("ok")
    if not isinstance(ok, bool):
        raise ProtocolError(
            E_MALFORMED_FRAME, "response 'ok' must be a boolean"
        )
    if ok and not isinstance(payload.get("result"), dict):
        raise ProtocolError(
            E_MALFORMED_FRAME, "ok response carries no 'result' object"
        )
    if not ok:
        error = payload.get("error")
        if not isinstance(error, dict) or not isinstance(
            error.get("code"), str
        ):
            raise ProtocolError(
                E_MALFORMED_FRAME,
                "error response carries no 'error.code'",
            )
    return payload
