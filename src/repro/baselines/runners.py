"""Convenience runners for the SRJ baseline policies (experiment E9)."""

from __future__ import annotations

from ..core.instance import Instance
from ..simulator.engine import SimulationEngine, SimulationResult
from ..simulator.policies import (
    GreedyFillPolicy,
    ListSchedulingPolicy,
    SlidingWindowPolicy,
)


def schedule_list_scheduling(
    instance: Instance, order: str = "input", observer=None,
    collect_stats: bool = False,
) -> SimulationResult:
    """Garey–Graham list scheduling (full-requirement allocations)."""
    return SimulationEngine(
        instance, ListSchedulingPolicy(order=order), observer=observer,
        collect_stats=collect_stats,
    ).run()


def schedule_greedy_fill(
    instance: Instance, observer=None, collect_stats: bool = False
) -> SimulationResult:
    """Largest-requirement-first greedy without splitting."""
    return SimulationEngine(
        instance, GreedyFillPolicy(), observer=observer,
        collect_stats=collect_stats,
    ).run()


def schedule_window_via_engine(
    instance: Instance, observer=None, collect_stats: bool = False
) -> SimulationResult:
    """The paper's algorithm run step-exactly through the engine — used to
    cross-validate the optimized scheduler."""
    return SimulationEngine(
        instance, SlidingWindowPolicy(), observer=observer,
        collect_stats=collect_stats,
    ).run()


BASELINES = {
    "list": schedule_list_scheduling,
    "list_lpt": lambda inst: schedule_list_scheduling(inst, order="lpt"),
    "list_spt": lambda inst: schedule_list_scheduling(inst, order="spt"),
    "greedy_fill": schedule_greedy_fill,
}
