"""Baseline SRJ schedulers used for comparison in the benchmarks."""

from .runners import (
    BASELINES,
    schedule_greedy_fill,
    schedule_list_scheduling,
    schedule_window_via_engine,
)

__all__ = [
    "BASELINES",
    "schedule_list_scheduling",
    "schedule_greedy_fill",
    "schedule_window_via_engine",
]
