"""Engine entry points: build a backend context + policy + state, run the
loop, emit results in the exact (rational) domain.

This is the one place where scaled working-domain quantities are converted
back to exact values; the front-end modules (``repro.core``,
``repro.tasks``, ``repro.online``, ``repro.assigned``) delegate here and
only adapt their own model types.  To avoid import cycles this module
never imports those front-ends — instance/task objects are consumed
duck-typed.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Tuple

from ..numeric import ceil_div
from ..obs import setup_observer, span
from .backends import make_context, resolve_backend
from .loop import StepDecision, run_loop
from .policies import (
    AssignedQueuePolicy,
    OnlineListPolicy,
    OnlineWindowPolicy,
    SequentialTaskPolicy,
    SlidingWindowPolicy,
    UnitWindowPolicy,
)
from .state import EngineState
from .trace import SRJResult, TraceRun

__all__ = [
    "solve_srj",
    "run_serial",
    "run_unit",
    "unit_makespan",
    "run_sequential_tasks",
    "run_online",
    "run_online_list",
    "run_assigned",
]


# ---------------------------------------------------------------------------
# Observability plumbing
# ---------------------------------------------------------------------------


def _run_meta(layer: str, ctx, m: int, n_jobs: int) -> Dict:
    """The ``on_run_start`` metadata for one engine run."""
    denominator = getattr(ctx, "denominator", 1)
    return {
        "layer": layer,
        "backend": ctx.name,
        "m": m,
        "n_jobs": n_jobs,
        "denominator_bits": denominator.bit_length(),
    }


class _SerialObsState:
    """Minimal state stand-in for the m = 1 serial path (no engine loop
    runs there), so observers see the same duck-typed surface."""

    def __init__(self, ctx) -> None:
        self.ctx = ctx
        self.t = 0
        self.processor_of: Dict = {}


# ---------------------------------------------------------------------------
# Result emission
# ---------------------------------------------------------------------------


def _build_srj_result(instance, state: EngineState) -> SRJResult:
    """Convert a finished engine state into an :class:`SRJResult`,
    rescaling all working-domain quantities back to exact values."""
    conv = state.ctx.to_fraction
    result = SRJResult(
        instance=instance,
        makespan=state.t,
        completion_times=dict(state.completion_times),
        steps_full_jobs=state.steps_full_jobs,
        steps_full_resource=state.steps_full_resource,
        total_waste=Fraction(conv(state.waste_units)),
    )
    result.trace = [
        TraceRun(
            shares={j: conv(c) for j, c in shares.items()},
            processors=procs,
            count=count,
            case=case,
            window=win,
        )
        for shares, procs, count, case, win in state.trace
    ]
    return result


# ---------------------------------------------------------------------------
# General SRJ — Listing 1
# ---------------------------------------------------------------------------


def solve_srj(
    instance,
    backend: str = "auto",
    accelerate: bool = True,
    window_size: Optional[int] = None,
    enable_move: bool = True,
    observer=None,
    collect_stats: bool = False,
    budget: Fraction = Fraction(1),
    step_limit: Optional[int] = None,
) -> SRJResult:
    """Run Listing 1 on *instance* with a selectable numeric backend.

    ``backend="fraction"`` runs the engine on exact rationals (the
    reference domain); ``backend="int"`` on LCM-rescaled integers
    (bit-for-bit identical results, typically an order of magnitude
    faster); ``backend="auto"`` picks the integer backend.

    *observer* receives the run's life-cycle events (see
    :mod:`repro.obs`); ``collect_stats=True`` additionally installs a
    :class:`~repro.obs.StatsObserver` and attaches its registry as
    ``result.stats``.

    *budget* is the per-step resource total (default the paper's
    ``R_total = 1``; the fault-tolerant runner passes degraded
    capacities).  *step_limit* truncates the run after that many steps —
    completion times of jobs still unfinished at the limit are simply
    absent from the result.
    """
    resolve_backend(backend)  # validate before any work
    if budget <= 0:
        raise ValueError("budget must be positive")
    if step_limit is not None and step_limit < 1:
        raise ValueError("step_limit must be >= 1")
    obs, metrics = setup_observer(observer, collect_stats)
    if instance.m == 1:
        result = run_serial(
            instance, observer=obs, budget=budget, step_limit=step_limit
        )
        result.stats = metrics
        return result
    with span(obs, "scale"):
        ctx = make_context(
            backend, budget, (job.requirement for job in instance.jobs)
        )
        req = {job.id: ctx.scale(job.requirement) for job in instance.jobs}
        totals = {job.id: job.size * req[job.id] for job in instance.jobs}
        state = EngineState(
            instance.m, ctx, req, totals, record_trace=True
        )
    if obs is not None:
        obs.on_run_start(_run_meta("srj", ctx, instance.m, instance.n))
    policy = SlidingWindowPolicy(
        budget=ctx.scale(budget),
        size=(
            window_size
            if window_size is not None
            else max(instance.m - 1, 1)
        ),
        enable_move=enable_move,
        accelerate=accelerate,
    )
    # upper bound on iterations: each trace run finishes a job or is
    # bounded by fracture-status changes; a generous cap catches
    # non-termination bugs instead of hanging.  With a degraded budget a
    # job may need ⌈s_j / min(r_j, budget)⌉ steps, so the non-accelerated
    # cap scales accordingly.
    if accelerate:
        max_iters = 16 * (instance.n + 4) * (instance.n + 4)
    else:
        total_steps = sum(
            ceil_div(job.total_requirement, min(job.requirement, budget))
            for job in instance.jobs
        )
        max_iters = 4 * total_steps * max(2, instance.n) + 64
    with span(obs, "loop"):
        run_loop(
            state,
            policy,
            max_iters,
            lambda: RuntimeError(
                "scheduler exceeded iteration cap — non-termination bug"
            ),
            observer=obs,
            step_limit=step_limit,
        )
    with span(obs, "emit"):
        result = _build_srj_result(instance, state)
    if obs is not None:
        obs.on_run_end(state, _srj_summary("srj", result))
    result.stats = metrics
    return result


def _srj_summary(layer: str, result: SRJResult) -> Dict:
    """The ``on_run_end`` summary for entry points emitting SRJResults."""
    return {
        "layer": layer,
        "makespan": result.makespan,
        "trace_runs": len(result.trace),
        "steps_full_jobs": result.steps_full_jobs,
        "steps_full_resource": result.steps_full_resource,
        "total_waste": str(result.total_waste),
    }


def run_serial(
    instance,
    observer=None,
    budget: Fraction = Fraction(1),
    step_limit: Optional[int] = None,
) -> SRJResult:
    """Trivial optimal scheduler for m = 1: run jobs one at a time, each
    receiving ``min(r_j, budget)`` per step.

    This path never enters the engine loop; when an *observer* is
    installed it receives one synthetic decision per emitted trace run so
    downstream telemetry (stats, JSONL traces) stays uniform.
    *step_limit* truncates the run exactly like the engine loop's bound.
    """
    result = SRJResult(instance=instance, makespan=0, completion_times={})
    obs_state = None
    if observer is not None:
        from .backends.fraction import FractionContext

        obs_state = _SerialObsState(FractionContext())
        observer.on_run_start(
            _run_meta("srj-serial", obs_state.ctx, instance.m, instance.n)
        )

    def emit(run: TraceRun) -> None:
        result.trace.append(run)
        if obs_state is None:
            return
        obs_state.t += run.count
        obs_state.processor_of.update(run.processors)
        observer.on_decision(
            obs_state,
            StepDecision(
                shares=run.shares,
                count=run.count,
                case=run.case,
                window=run.window,
                full_jobs_step=True,
            ),
        )

    t = 0
    for job in instance.jobs:
        if step_limit is not None and t >= step_limit:
            break
        share = min(job.requirement, budget)
        steps = ceil_div(job.total_requirement, share)
        if step_limit is not None and t + steps > step_limit:
            # truncated tail: the job keeps its full per-step share for the
            # remaining room and stays unfinished (no completion recorded)
            room = step_limit - t
            emit(
                TraceRun(
                    shares={job.id: share},
                    processors={job.id: 0},
                    count=room,
                    case="serial",
                    window=[job.id],
                )
            )
            t += room
            result.steps_full_jobs += room
            break
        full_steps = steps - 1
        rem_last = job.total_requirement - full_steps * share
        if full_steps > 0:
            emit(
                TraceRun(
                    shares={job.id: share},
                    processors={job.id: 0},
                    count=full_steps,
                    case="serial",
                    window=[job.id],
                )
            )
        emit(
            TraceRun(
                shares={job.id: rem_last},
                processors={job.id: 0},
                count=1,
                case="serial",
                window=[job.id],
            )
        )
        t += steps
        result.completion_times[job.id] = t
        result.steps_full_jobs += steps
    result.makespan = t
    if obs_state is not None:
        observer.on_run_end(obs_state, _srj_summary("srj-serial", result))
    return result


# ---------------------------------------------------------------------------
# Unit-size variant
# ---------------------------------------------------------------------------


def run_unit(
    instance,
    backend: str = "auto",
    observer=None,
    collect_stats: bool = False,
) -> SRJResult:
    """Run the unit-size m-maximal-window algorithm on *instance* (all
    ``p_j = 1``; the front-end validates).

    ``observer=`` / ``collect_stats=`` as in :func:`solve_srj`.
    """
    resolve_backend(backend)
    obs, metrics = setup_observer(observer, collect_stats)
    with span(obs, "scale"):
        ctx = make_context(
            backend, Fraction(1), (job.requirement for job in instance.jobs)
        )
        req = {job.id: ctx.scale(job.requirement) for job in instance.jobs}
        state = EngineState(instance.m, ctx, req, req, record_trace=True)
    if obs is not None:
        obs.on_run_start(_run_meta("unit", ctx, instance.m, instance.n))
    order = sorted((value, job_id) for job_id, value in req.items())
    policy = UnitWindowPolicy(budget=ctx.scale(Fraction(1)), order=order)
    # every job needs at most a bulk run plus two finishing decisions
    with span(obs, "loop"):
        run_loop(
            state,
            policy,
            8 * instance.n + 32,
            lambda: RuntimeError(
                "unit scheduler exceeded iteration cap — non-termination bug"
            ),
            observer=obs,
        )
    with span(obs, "emit"):
        result = _build_srj_result(instance, state)
    if obs is not None:
        obs.on_run_end(state, _srj_summary("unit", result))
    result.stats = metrics
    return result


def unit_makespan(
    requirements: Sequence[Fraction],
    m: int,
    budget: Fraction,
    backend: str = "auto",
) -> int:
    """Makespan of the unit-size algorithm over bare *requirements* (the
    Corollary-3.9 bin-packing view: each time step = one bin).

    Jobs are re-indexed by their rank in the sorted ``(value, input
    position)`` order, matching the canonical-id tie-breaking of
    :func:`run_unit`; inputs are already-validated positive rationals.
    """
    ctx = make_context(backend, budget, requirements)
    ranked = sorted(
        (ctx.scale(r), i) for i, r in enumerate(requirements)
    )
    req = {rank: value for rank, (value, _i) in enumerate(ranked)}
    state = EngineState(m, ctx, req, req)
    policy = UnitWindowPolicy(
        budget=ctx.scale(budget),
        order=[(value, rank) for rank, value in req.items()],
    )
    run_loop(
        state,
        policy,
        8 * len(req) + 32,
        lambda: RuntimeError(
            "unit scheduler exceeded iteration cap — non-termination bug"
        ),
    )
    return state.t


# ---------------------------------------------------------------------------
# Sequential SRT engine — Listings 3 and 4
# ---------------------------------------------------------------------------


def run_sequential_tasks(
    tasks,
    m: int,
    budget: Fraction,
    record_steps: bool = True,
    backend: str = "auto",
    observer=None,
    step_limit: Optional[int] = None,
) -> Tuple[Dict, int, Optional[List]]:
    """Run the Listing-3/4 sequential engine over *tasks* in order.

    Returns ``(task_completion_times, makespan, steps)`` where *steps* is
    ``None`` when ``record_steps`` is off and otherwise a list of
    ``(shares, tasks_packed)`` pairs per step with exact-valued shares
    keyed by ``(task_id, job_index)``.  *observer* receives the run's
    life-cycle events (stats composition happens in the task front-end,
    which may share one observer across the heavy and light half-runs).
    *step_limit* truncates the run after that many steps; tasks still
    unfinished then have no completion time.
    """
    if m < 1:
        raise ValueError("m must be >= 1")
    if budget <= 0:
        raise ValueError("budget must be positive")
    if step_limit is not None and step_limit < 1:
        raise ValueError("step_limit must be >= 1")
    resolve_backend(backend)
    obs, _ = setup_observer(observer)
    with span(obs, "scale"):
        all_reqs = [r for task in tasks for r in task.requirements]
        ctx = make_context(backend, budget, all_reqs)
        req = {
            (task.id, i): ctx.scale(r)
            for task in tasks
            for i, r in enumerate(task.requirements)
        }
        state = EngineState(m, ctx, req, req, record_trace=record_steps)
    if obs is not None:
        obs.on_run_start(_run_meta("sequential-tasks", ctx, m, len(req)))
    orders = [
        sorted(
            (req[(task.id, i)], i)
            for i in range(len(task.requirements))
        )
        for task in tasks
    ]
    policy = SequentialTaskPolicy(
        budget=ctx.scale(budget),
        m=m,
        task_ids=[task.id for task in tasks],
        orders=orders,
    )
    guard_limit = 4 * len(req) + 16
    # a job can take many steps if its requirement exceeds the budget;
    # ⌊v/B⌋ on scaled values equals ⌊r/budget⌋ exactly, in both domains
    scaled_budget = policy.budget
    guard_limit += 4 * sum(
        max(v // scaled_budget, 1) for v in req.values()
    )
    with span(obs, "loop"):
        run_loop(
            state,
            policy,
            guard_limit,
            lambda: RuntimeError("sequential engine exceeded iteration cap"),
            observer=obs,
            step_limit=step_limit,
        )
    steps: Optional[List] = None
    with span(obs, "emit"):
        if record_steps:
            conv = ctx.to_fraction
            steps = [
                (
                    {key: Fraction(conv(v)) for key, v in shares.items()},
                    packed,
                )
                for shares, _procs, _count, _case, packed in state.trace
            ]
    if obs is not None:
        obs.on_run_end(
            state,
            {"layer": "sequential-tasks", "makespan": state.t,
             "tasks": len(policy.completion)},
        )
    return dict(policy.completion), state.t, steps


# ---------------------------------------------------------------------------
# Online layer
# ---------------------------------------------------------------------------


def _online_state(
    offline, backend: str, record_utilization: bool = True
) -> EngineState:
    ctx = make_context(
        backend, Fraction(1), (job.requirement for job in offline.jobs)
    )
    req = {job.id: ctx.scale(job.requirement) for job in offline.jobs}
    totals = {job.id: job.size * req[job.id] for job in offline.jobs}
    return EngineState(
        offline.m, ctx, req, totals, record_utilization=record_utilization
    )


def _run_online_policy(
    offline, make_policy, layer: str, max_steps: int, backend: str, observer
) -> Tuple[int, Dict[int, int], List[Fraction]]:
    """Shared driver of the two online entry points."""
    resolve_backend(backend)
    obs, _ = setup_observer(observer)
    with span(obs, "scale"):
        state = _online_state(offline, backend)
    if obs is not None:
        obs.on_run_start(
            _run_meta(layer, state.ctx, offline.m, len(offline.jobs))
        )
    policy = make_policy(state)
    with span(obs, "loop"):
        run_loop(
            state,
            policy,
            max_steps,
            lambda: RuntimeError(f"{layer} scheduler exceeded max_steps"),
            observer=obs,
        )
    with span(obs, "emit"):
        conv = state.ctx.to_fraction
        utilization = [Fraction(conv(u)) for u in state.utilization]
    if obs is not None:
        obs.on_run_end(state, {"layer": layer, "makespan": state.t})
    return state.t, dict(state.completion_times), utilization


def run_online(
    offline,
    release_of: Dict[int, int],
    max_steps: int = 1_000_000,
    backend: str = "auto",
    observer=None,
) -> Tuple[int, Dict[int, int], List[Fraction]]:
    """Arrival-aware window algorithm over the canonical *offline*
    instance; ``release_of`` maps canonical job ids to release steps.

    Returns ``(makespan, completion_times, utilization)`` with canonical
    job ids (the front-end maps them back to online ids).
    """
    return _run_online_policy(
        offline,
        lambda state: OnlineWindowPolicy(
            budget=state.ctx.scale(Fraction(1)),
            size=max(offline.m - 1, 1),
            release_of=release_of,
        ),
        "online",
        max_steps,
        backend,
        observer,
    )


def run_online_list(
    offline,
    release_of: Dict[int, int],
    max_steps: int = 1_000_000,
    backend: str = "auto",
    observer=None,
) -> Tuple[int, Dict[int, int], List[Fraction]]:
    """Online list-scheduling baseline over the canonical *offline*
    instance (see :func:`run_online` for the return value)."""
    return _run_online_policy(
        offline,
        lambda state: OnlineListPolicy(
            budget=state.ctx.scale(Fraction(1)),
            m=offline.m,
            release_of=release_of,
        ),
        "online-list",
        max_steps,
        backend,
        observer,
    )


# ---------------------------------------------------------------------------
# Fixed-assignment layer
# ---------------------------------------------------------------------------


def run_assigned(
    instance,
    policy: str,
    budget: Fraction,
    max_steps: int = 10_000_000,
    backend: str = "auto",
    observer=None,
) -> Tuple[int, Dict, List[Fraction]]:
    """Run a head-of-queue distribution policy on an assigned instance.

    The ``proportional`` policy needs exact division (not closed over the
    scaled-integer lattice), so ``"auto"``/``"int"`` silently resolve to
    the exact context for it.
    """
    kind = resolve_backend(backend)
    if policy == "proportional":
        kind = "fraction"
    obs, _ = setup_observer(observer)
    with span(obs, "scale"):
        ctx = make_context(
            kind, budget, (j.requirement for j in instance.jobs())
        )
        req = {j.key: ctx.scale(j.requirement) for j in instance.jobs()}
        totals = {j.key: j.size * req[j.key] for j in instance.jobs()}
        state = EngineState(
            instance.m, ctx, req, totals, record_utilization=True
        )
    if obs is not None:
        obs.on_run_start(
            _run_meta("assigned", ctx, instance.m, len(req))
        )
    queues = [[job.key for job in queue] for queue in instance.queues]
    engine_policy = AssignedQueuePolicy(
        budget=ctx.scale(budget), queues=queues, policy=policy
    )
    with span(obs, "loop"):
        run_loop(
            state,
            engine_policy,
            max_steps,
            lambda: RuntimeError("assigned scheduler exceeded max_steps"),
            observer=obs,
        )
    with span(obs, "emit"):
        conv = ctx.to_fraction
        utilization = [Fraction(conv(u)) for u in state.utilization]
    if obs is not None:
        obs.on_run_end(state, {"layer": "assigned", "makespan": state.t})
    return state.t, dict(state.completion_times), utilization
