"""Canonical run-length-encoded trace/event representation.

Every scheduler layer that runs through the engine emits its history in
this one format: a list of :class:`TraceRun` objects (each a run of
``count`` identical time steps), wrapped in an :class:`SRJResult`.
Validators and analysis code consume it either streamed
(:meth:`SRJResult.iter_steps`) or materialized
(:meth:`SRJResult.schedule`).

Historically these classes lived in ``repro.core.scheduler``; that module
re-exports them, so existing imports keep working.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import TYPE_CHECKING, Dict, Iterator, List, Mapping, Tuple

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..core.instance import Instance
    from ..core.schedule import Schedule
    from ..obs.metrics import MetricsRegistry


@dataclass
class TraceRun:
    """A run of *count* identical time steps with the given shares."""

    shares: Dict[int, Fraction]
    processors: Dict[int, int]
    count: int
    case: str
    window: List[int]


@dataclass
class SRJResult:
    """Outcome of a scheduler run."""

    instance: "Instance"
    makespan: int
    completion_times: Dict[int, int]
    trace: List[TraceRun] = field(default_factory=list)
    #: number of steps in which ≥ m-2 jobs got their full requirement
    steps_full_jobs: int = 0
    #: number of steps in which the whole resource budget was used
    steps_full_resource: int = 0
    #: total wasted resource over the run
    total_waste: Fraction = Fraction(0)
    #: metrics accumulated by ``collect_stats=True`` (else ``None``)
    stats: "MetricsRegistry" = field(
        default=None, repr=False, compare=False
    )

    def iter_steps(self) -> Iterator[Mapping[int, Tuple[int, Fraction]]]:
        """Stream the schedule step-by-step without materializing it.

        Yields one mapping ``job_id -> (processor, share)`` per time step,
        expanding the RLE trace lazily — ``makespan`` steps in total, with
        memory bounded by the widest single step.  For a run of ``k``
        identical steps the *same* mapping object is yielded ``k`` times;
        treat it as read-only (copy if you need to keep it).

        This is what validators should consume for large instances, where
        :meth:`schedule` would materialize millions of :class:`Step`
        objects (see :func:`repro.core.validate.validate_result`).
        """
        for run in self.trace:
            step = {
                j: (run.processors[j], share)
                for j, share in run.shares.items()
            }
            for _ in range(run.count):
                yield step

    def schedule(self, max_steps: int = 1_000_000) -> "Schedule":
        """Expand the RLE trace into a full :class:`Schedule`.

        Refuses to materialize more than *max_steps* steps.
        """
        from ..core.schedule import Schedule

        if self.makespan > max_steps:
            raise ValueError(
                f"schedule has {self.makespan} steps; raise max_steps to expand"
            )
        sched = Schedule(instance=self.instance)
        for run in self.trace:
            for _ in range(run.count):
                sched.append_step(
                    {
                        j: (run.processors[j], share)
                        for j, share in run.shares.items()
                    }
                )
        return sched
