"""Shared mutable engine state, generic over the numeric backend.

:class:`EngineState` is the one bookkeeping structure behind every
scheduler layer in the repo: remaining requirements, started/fractured
status, processor ownership, the RLE trace, completion times and the
Theorem-3.3 step statistics.  All quantities live in the *working domain*
of the attached numeric context (``state.ctx``) — exact rationals for the
reference backend, LCM-rescaled integers for the fast backend.

Generic-code contract (enforced by the ``hotpath-exact`` rule of
``make lint``): this module
only combines quantities with ``+``, ``-``, ``*int``, ``min``/``max``,
comparisons, ``//`` and ``%`` — the operations under which both working
domains are closed — and never constructs a numeric literal other than
via ``ctx.zero``.  (Plain ``0`` in comparisons and as an additive neutral
is exact in both domains and therefore allowed.)

Job keys are opaque sortable objects: plain ints for SRJ/unit jobs,
``(task_id, index)`` pairs for the sequential SRT engine and
``(processor, position)`` pairs for the fixed-assignment model.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Dict, List, Optional, Set

from .backends.base import NumericContext
from .loop import StepDecision


class EngineState:
    """Tracks remaining work, fractured status and processor ownership."""

    def __init__(
        self,
        m: int,
        ctx: NumericContext,
        requirements: Dict,
        totals: Dict,
        record_trace: bool = False,
        record_utilization: bool = False,
    ) -> None:
        self.m = m
        self.ctx = ctx
        self.zero = ctx.zero
        #: per-job resource requirement r_j (working domain)
        self.req = dict(requirements)
        #: per-job initial total requirement s_j = p_j * r_j (working domain)
        self.total = dict(totals)
        #: remaining total requirement s_j(t) per job key
        self.remaining = dict(self.total)
        #: job keys not yet finished, ascending (canonical order)
        self._unfinished: List = sorted(self.remaining)
        #: job key -> processor, assigned at first processing step
        self.processor_of: Dict = {}
        #: processors currently owned by a *running* (started, unfinished) job
        self._busy_processors: Set[int] = set()
        #: processors taken offline by a fault injector (never assigned)
        self._down_processors: Set[int] = set()
        #: current time step (number of completed steps)
        self.t: int = 0
        #: job key -> completion time step
        self.completion_times: Dict = {}
        #: RLE trace rows (shares, processors, count, case, window) or None
        self.trace: Optional[List] = [] if record_trace else None
        #: per-step resource usage (working domain) or None
        self.utilization: Optional[List] = [] if record_utilization else None
        #: steps in which >= m-2 jobs got their full requirement
        self.steps_full_jobs: int = 0
        #: steps in which the whole resource budget was used
        self.steps_full_resource: int = 0
        #: total wasted resource over the run (working domain)
        self.waste_units = ctx.zero

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def unfinished(self) -> List:
        """``J(t)`` — keys of unfinished jobs, ascending (canonical order)."""
        return list(self._unfinished)

    def n_unfinished(self) -> int:
        return len(self._unfinished)

    def is_finished(self, job_id) -> bool:
        return self.remaining[job_id] <= 0

    def is_started(self, job_id) -> bool:
        """Started := has received resource but is not finished."""
        rem = self.remaining[job_id]
        return rem < self.total[job_id] and rem > 0

    def is_fractured(self, job_id) -> bool:
        """``s_j(t)`` is not an integer multiple of ``r_j`` (and > 0)."""
        rem = self.remaining[job_id]
        if rem <= 0:
            return False
        return rem % self.req[job_id] != 0

    def fractured_remainder(self, job_id):
        """``q_j(t)``: the part of ``s_j(t)`` modulo ``r_j``, in [0, r_j)."""
        return self.remaining[job_id] % self.req[job_id]

    def started_jobs(self) -> List:
        """All started (and unfinished) jobs."""
        return [j for j in self._unfinished if self.is_started(j)]

    def fractured_jobs(self) -> List:
        """All fractured (unfinished) jobs."""
        return [j for j in self._unfinished if self.is_fractured(j)]

    def free_processors(self) -> List[int]:
        """Processors not owned by a running job and not down, ascending."""
        return [
            p
            for p in range(self.m)
            if p not in self._busy_processors
            and p not in self._down_processors
        ]

    def available_processors(self) -> int:
        """Number of processors currently online."""
        return self.m - len(self._down_processors)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------

    def processor_for(self, job_id) -> int:
        """Processor owning *job_id*, assigning the lowest free one on first
        use.

        Raises :class:`RuntimeError` if all processors are busy — that would
        mean the caller scheduled more than ``m`` concurrent jobs.
        """
        if job_id in self.processor_of and not self.is_finished(job_id):
            return self.processor_of[job_id]
        for p in range(self.m):
            if (
                p not in self._busy_processors
                and p not in self._down_processors
            ):
                self.processor_of[job_id] = p
                self._busy_processors.add(p)
                return p
        raise RuntimeError(
            f"no free processor for job {job_id}: more than m={self.m}"
            " concurrent jobs scheduled"
        )

    def set_processor_down(self, processor: int) -> None:
        """Take *processor* offline (fault injection).

        A running owner loses the processor and will be re-assigned a free
        one at its next processing step — under faults the model permits
        this migration (the paper's fixed-assignment property assumes a
        fault-free machine).
        """
        if processor < 0 or processor >= self.m:
            raise ValueError(
                f"processor {processor} out of range 0..{self.m - 1}"
            )
        self._down_processors.add(processor)
        self._busy_processors.discard(processor)
        for job_id, proc in list(self.processor_of.items()):
            if proc == processor:
                del self.processor_of[job_id]

    def set_processor_up(self, processor: int) -> None:
        """Bring a crashed *processor* back online."""
        self._down_processors.discard(processor)

    def force_finish(self, job_id) -> List:
        """Abort *job_id*: zero its remaining work, record completion at
        the current step, release its processor.  Returns the keys
        actually aborted (empty if the job was already finished)."""
        if job_id not in self.remaining or self.remaining[job_id] <= 0:
            return []
        self.remaining[job_id] = self.zero
        self.completion_times[job_id] = self.t
        idx = bisect_left(self._unfinished, job_id)
        if idx < len(self._unfinished) and self._unfinished[idx] == job_id:
            del self._unfinished[idx]
        proc = self.processor_of.get(job_id)
        if proc is not None:
            self._busy_processors.discard(proc)
        return [job_id]

    def _apply(self, shares: Dict, count: int, check_negative: bool) -> List:
        """Subtract ``count`` copies of *shares*, advance ``t``, record
        completions, release processors of finished jobs."""
        finished: List = []
        remaining = self.remaining
        for job_id, share in shares.items():
            if share == 0:
                continue
            if check_negative and share < 0:
                raise ValueError(f"negative share for job {job_id}")
            rem = remaining[job_id] - count * share
            if rem <= 0:
                rem = self.zero
                finished.append(job_id)
            remaining[job_id] = rem
        self.t += count
        if finished:
            for j in finished:
                self.completion_times[j] = self.t
                del self._unfinished[bisect_left(self._unfinished, j)]
                proc = self.processor_of.get(j)
                if proc is not None:
                    self._busy_processors.discard(proc)
        return finished

    def apply_step(self, shares: Dict) -> List:
        """Apply one time step of resource *shares* (job key -> share).

        Shares are assumed already capped at ``min(r_j, s_j(t-1))`` by the
        assignment layer.  Returns the list of jobs finished in this step and
        releases their processors.  Advances ``t`` by one.
        """
        return self._apply(shares, 1, check_negative=True)

    def apply_bulk(self, shares: Dict, k: int) -> List:
        """Apply *k* identical steps at once (the fast-path of Theorem 3.3).

        The caller guarantees that the share vector would be recomputed
        identically for each of the ``k`` steps (no job finishes before the
        last step, no fracture-status change alters the assignment).  Jobs
        finishing exactly at the ``k``-th step are returned.
        """
        if k < 1:
            raise ValueError("k must be >= 1")
        return self._apply(shares, k, check_negative=False)

    def apply_decision(self, decision: StepDecision) -> List:
        """Apply one policy :class:`StepDecision`: assign processors, record
        the trace row and statistics, subtract the shares."""
        shares = decision.shares
        procs: Optional[Dict] = None
        if decision.assign_processors:
            procs = {}
            busy = self._busy_processors
            down = self._down_processors
            owner = self.processor_of
            for job_id in shares:
                p = owner.get(job_id)
                if p is None:
                    for q in range(self.m):
                        if q not in busy and q not in down:
                            p = q
                            break
                    else:
                        raise RuntimeError(
                            f"no free processor for job {job_id}: more than"
                            f" m={self.m} concurrent jobs scheduled"
                        )
                    owner[job_id] = p
                    busy.add(p)
                procs[job_id] = p
        if self.trace is not None:
            self.trace.append(
                (shares, procs, decision.count, decision.case, decision.window)
            )
        count = decision.count
        finished = self._apply(shares, count, check_negative=True)
        if decision.full_jobs_step:
            self.steps_full_jobs += count
        if decision.full_resource_step:
            self.steps_full_resource += count
        self.waste_units = self.waste_units + count * decision.waste
        if self.utilization is not None:
            self.utilization.append(decision.used)
        return finished

    # ------------------------------------------------------------------
    # Window-relative job sets (Section 3 notation)
    # ------------------------------------------------------------------

    def left_of(self, window: Optional[List]) -> List:
        """``L_t(U)``: unfinished jobs with key < min(U); all if U empty."""
        if not window:
            return []
        lo = min(window)
        return [j for j in self._unfinished if j < lo]

    def right_of(self, window: Optional[List]) -> List:
        """``R_t(U)``: unfinished jobs with key > max(U); all if U empty."""
        if not window:
            return list(self._unfinished)
        hi = max(window)
        return [j for j in self._unfinished if j > hi]
