"""Engine policies: per-step decisions for every scheduler layer.

Each policy is a faithful transliteration of the corresponding reference
scheduler's step body onto :class:`~repro.engine.state.EngineState`,
written generically over the numeric backend (see
``repro.engine.backends.base`` for the closed-operation contract; this
module is covered by the ``hotpath-exact`` lint rule).  The policies:

* :class:`SlidingWindowPolicy` — Listing 1 (general SRJ), the hot loop
  formerly in ``perf/intkernel.py`` / ``core/scheduler.py``;
* :class:`UnitWindowPolicy` — the unit-size m-maximal-window variant
  (``core/unit.py`` / ``perf/unitint.py``);
* :class:`SequentialTaskPolicy` — the Listing-3/4 SRT engine
  (``tasks/sequential.py``);
* :class:`OnlineWindowPolicy` / :class:`OnlineListPolicy` — the
  arrival-aware schedulers (``online/scheduler.py``);
* :class:`AssignedQueuePolicy` — the fixed-assignment head-of-queue
  distribution policies (``assigned/scheduler.py``).

All share vectors, windows and error messages are kept bit-identical to
the reference implementations; the cross-backend equivalence suites
(``tests/test_perf_backends.py``, ``tests/test_engine_backends.py``)
assert this.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Dict, List, Optional, Sequence

from .loop import StepDecision
from .state import EngineState

__all__ = [
    "SlidingWindowPolicy",
    "UnitWindowPolicy",
    "SequentialTaskPolicy",
    "OnlineWindowPolicy",
    "OnlineListPolicy",
    "AssignedQueuePolicy",
    "compute_window",
    "compute_assignment",
]


# ---------------------------------------------------------------------------
# Listing 1 — the general SRJ sliding window (one flat hot loop)
# ---------------------------------------------------------------------------


class SlidingWindowPolicy:
    """Listing 1: (m-1)-maximal window + Case-1/Case-2 assignment + bulk
    horizon (Theorem 3.3).  Deliberately one flat ``decide`` over plain
    dict/list lookups — after exact-arithmetic normalization is gone
    (integer backend), Python-level call overhead is what remains."""

    def __init__(
        self,
        budget,
        size: int,
        enable_move: bool = True,
        accelerate: bool = True,
    ) -> None:
        self.budget = budget
        self.size = size
        self.enable_move = enable_move
        # strict / allow_extra_start follow enable_move exactly as in the
        # reference scheduler (compute_assignment was called with
        # allow_extra_start=enable_move, strict=enable_move)
        self.strict = enable_move
        self.accelerate = accelerate
        self.window: List = []

    def decide(self, state: EngineState) -> StepDecision:  # noqa: C901
        S = state.remaining
        R = state.req
        total = state.total
        unfinished = state._unfinished
        B = self.budget
        size = self.size
        strict = self.strict
        enable_move = self.enable_move

        # ---- window: Lines 2-5 of Listing 1 -----------------------------
        # carry over the unfinished part of the previous window
        window = [j for j in self.window if S[j] > 0]
        # GrowWindowLeft with the DESIGN.md §2 repair: gate each add on
        # r((W ∪ {j}) \ {max W}) < B so property (b) is preserved
        if window:
            lo = bisect_left(unfinished, window[0])
            r_wo_max = 0
            for j in window:
                r_wo_max += R[j]
            r_wo_max -= R[window[-1]]
        else:
            lo = 0
            r_wo_max = 0
        while len(window) < size and lo > 0:
            new_job = unfinished[lo - 1]
            if r_wo_max + R[new_job] >= B:
                break
            window.insert(0, new_job)
            r_wo_max += R[new_job]
            lo -= 1
        # GrowWindowRight while r(W) < B  (left growth never touches
        # max W, so r(W) = r_wo_max + R[max W])
        if window:
            r_w = r_wo_max + R[window[-1]]
            hi = bisect_right(unfinished, window[-1])
        else:
            r_w = 0
            hi = 0
        len_u = len(unfinished)
        while r_w < B and hi < len_u and len(window) < size:
            new_job = unfinished[hi]
            window.append(new_job)
            r_w += R[new_job]
            hi += 1
        # MoveWindowRight while resource-deficient and min W unstarted
        if enable_move and window:
            while r_w < B and hi < len_u:
                j0 = window[0]
                if 0 < S[j0] < total[j0]:  # started jobs are never dropped
                    break
                window.pop(0)
                r_w -= R[j0]
                new_job = unfinished[hi]
                window.append(new_job)
                r_w += R[new_job]
                hi += 1
        if not window:
            raise RuntimeError(
                "empty window with unfinished jobs — window bug"
            )

        # ---- assignment: Listing 1 lines 6-20 ---------------------------
        # F = set of fractured window jobs (|F| ≤ 1 when strict)
        iota = None
        for j in window:
            if S[j] % R[j]:
                if iota is not None:
                    if strict:
                        fractured = [jj for jj in window if S[jj] % R[jj]]
                        raise RuntimeError(
                            f"window invariant broken: {len(fractured)} "
                            f"fractured jobs ({fractured}); the "
                            "algorithm guarantees at most one"
                        )
                    break  # tolerant mode only needs the first ι
                iota = j
        max_w = window[-1]
        r_w_minus_f = r_w - R[iota] if iota is not None else r_w
        shares: Dict = {}
        n_fully_served = 0
        extra_started = None

        if r_w_minus_f >= B:
            # --------------------------- Case 1 --------------------------
            case = "case1"
            if iota == max_w:
                if strict:
                    raise RuntimeError(
                        "Case 1 with fractured max W contradicts window "
                        "property (b)"
                    )
                iota = None  # tolerant mode: demote ι
            used = 0
            for j in window:
                if j == iota or j == max_w:
                    continue
                rj = R[j]
                share = rj if rj < S[j] else S[j]
                shares[j] = share
                if share == rj:
                    n_fully_served += 1
                used += share
            if iota is not None:
                q = S[iota] % R[iota]  # q_ι(t-1) ∈ (0, r_ι), ≤ s_ι
                shares[iota] = q
                used += q
            remaining = B - used
            if remaining < 0:
                raise RuntimeError("resource overuse in Case 1 assignment")
            share = remaining
            if R[max_w] < share:
                share = R[max_w]
            if S[max_w] < share:
                share = S[max_w]
            if share > 0:
                shares[max_w] = share
                if share == R[max_w]:
                    n_fully_served += 1
            waste = B - used - share
        else:
            # --------------------------- Case 2 --------------------------
            case = "case2"
            used = 0
            for j in window:
                if j == iota:
                    continue
                rj = R[j]
                share = rj if rj < S[j] else S[j]
                shares[j] = share
                if share == rj:
                    n_fully_served += 1
                used += share
            leftover = B - used
            iota_finishing = iota is None
            if iota is not None:
                share = leftover
                if R[iota] < share:
                    share = R[iota]
                if S[iota] < share:
                    share = S[iota]
                if share > 0:
                    shares[iota] = share
                iota_finishing = share == S[iota]
                leftover -= share
            # Case-2 leftover starts min R_t(W) on the reserved
            # processor (only when no fractured job survives the step)
            if leftover > 0 and enable_move and iota_finishing:
                if hi < len_u:
                    new_job = unfinished[hi]
                    share = leftover
                    if R[new_job] < share:
                        share = R[new_job]
                    if S[new_job] < share:
                        share = S[new_job]
                    if share > 0:
                        shares[new_job] = share
                        extra_started = new_job
                        if share == R[new_job]:
                            n_fully_served += 1
                        leftover -= share
            waste = leftover
        if not shares:
            raise RuntimeError("no resource assigned — assignment bug")

        # ---- bulk horizon (Theorem 3.3 step skipping) -------------------
        count = 1
        if self.accelerate:
            sole_stable_partial = None
            n_partial = 0
            for j, c in shares.items():
                if 0 < c < R[j]:
                    n_partial += 1
                    sole_stable_partial = j
            if n_partial != 1 or sole_stable_partial != max_w:
                sole_stable_partial = None
            steps_until = state.ctx.steps_until_status_change
            horizon = 0
            for j, c in shares.items():
                if c <= 0:
                    continue
                limit = S[j] // c
                if limit < 1:
                    limit = 1
                if c < R[j] and j != sole_stable_partial:
                    i = steps_until(S[j], c, R[j])
                    if i is not None and i < limit:
                        limit = i
                if horizon == 0 or limit < horizon:
                    horizon = limit
            count = horizon if horizon >= 1 else 1

        decision = StepDecision(
            shares=shares,
            count=count,
            case=case,
            window=list(window),
            waste=waste,
            full_jobs_step=n_fully_served >= state.m - 2,
            full_resource_step=waste == 0,  # Σ shares ≥ B ⇔ zero waste
        )
        # extra-started job joins the window (it is > max W by choice)
        if extra_started is not None:
            window.append(extra_started)
        self.window = window
        return decision


# ---------------------------------------------------------------------------
# Unit-size variant — m-maximal windows over the virtual (value, key) order
# ---------------------------------------------------------------------------


class UnitWindowPolicy:
    """The m-maximal-window algorithm for unit-size jobs (``s_j = r_j``).

    ``order`` is the virtual ordering as sorted ``(current value, key)``
    pairs; the policy maintains it across steps, re-inserting the started
    job ``ι`` at its new (value, key) rank after every step."""

    def __init__(self, budget, order: Sequence) -> None:
        self.budget = budget
        self.order: List = list(order)
        self.iota_idx: Optional[int] = None  # index of ι in `order`

    def decide(self, state: EngineState) -> StepDecision:
        order = self.order
        m = state.m
        budget = self.budget
        iota_idx = self.iota_idx
        if iota_idx is not None:
            lo, hi = iota_idx, iota_idx + 1
            r_w = order[iota_idx][0]
        else:
            lo = hi = 0
            r_w = state.zero
        # grow left
        while hi - lo < m and lo > 0 and r_w < budget:
            lo -= 1
            r_w += order[lo][0]
        # grow right
        while r_w < budget and hi < len(order) and hi - lo < m:
            r_w += order[hi][0]
            hi += 1
        # move right while resource-deficient and the leftmost is unstarted
        while (
            r_w < budget
            and hi < len(order)
            and (iota_idx is None or lo != iota_idx)
        ):
            r_w -= order[lo][0]
            lo += 1
            r_w += order[hi][0]
            hi += 1
        window = order[lo:hi]

        # assignment: all but the last window job get their full value
        shares: Dict = {}
        used = state.zero
        for value, key in window[:-1]:
            shares[key] = value
            used += value
        last_value, last_key = window[-1]
        last_share = min(budget - used, last_value)
        if last_share <= 0:
            raise RuntimeError("window assignment bug: max W gets nothing")
        shares[last_key] = last_share
        # bulk: a lone oversized job absorbing the full budget each step
        count = 1
        if hi - lo == 1 and last_share == budget:
            count = last_value // budget
            if count < 1:
                count = 1
            shares[last_key] = budget
        # every job except possibly the last finishes this step
        rem = last_value - count * shares[last_key]
        new_order = order[:lo] + order[hi:]
        if rem <= 0:
            self.iota_idx = None
        else:
            entry = (rem, last_key)
            idx = bisect_left(new_order, entry)
            new_order.insert(idx, entry)
            self.iota_idx = idx
        self.order = new_order
        n_full = (hi - lo) - (1 if rem > 0 else 0)
        return StepDecision(
            shares=shares,
            count=count,
            case="unit",
            window=[key for _, key in window],
            full_jobs_step=n_full >= m - 1,
            full_resource_step=used + shares[last_key] >= budget,
        )


# ---------------------------------------------------------------------------
# Sequential SRT engine — Listings 3 and 4 (task packing + unit window)
# ---------------------------------------------------------------------------


class SequentialTaskPolicy:
    """Per step: pack whole tasks while they fit (phase A), then run the
    unit-size sliding window over the current task's remaining jobs with
    the leftover processors/resource (phase B).

    Job keys are ``(task_id, job_index)``; ``orders`` holds one sorted
    ``(current value, job_index)`` list per task, in schedule order.
    Task completion times accumulate in ``self.completion``."""

    def __init__(self, budget, m: int, task_ids: Sequence, orders) -> None:
        self.budget = budget
        self.m = m
        self.task_ids = list(task_ids)
        self.orders: List[List] = [list(o) for o in orders]
        self.iotas: List[Optional[int]] = [None] * len(self.orders)
        self.cur = 0
        self.t = 0
        self.completion: Dict = {}

    def decide(self, state: EngineState) -> StepDecision:
        self.t += 1
        t = self.t
        avail = self.budget
        procs = self.m
        shares: Dict = {}
        packed: List = []
        cur = self.cur
        orders = self.orders
        task_ids = self.task_ids
        # ---- phase A: pack whole tasks ----------------------------------
        while cur < len(orders):
            order = orders[cur]
            need = state.zero
            for v, _ in order:
                need += v
            count = len(order)
            if need <= avail and count <= procs:
                tid = task_ids[cur]
                for value, idx in order:
                    shares[(tid, idx)] = value
                avail -= need
                procs -= count
                self.completion[tid] = t
                packed.append(tid)
                orders[cur] = []
                self.iotas[cur] = None
                cur += 1
            else:
                break
        # ---- phase B: sliding window on the current task ----------------
        if cur < len(orders) and procs >= 1 and avail > 0:
            order = orders[cur]
            iota = self.iotas[cur]
            tid = task_ids[cur]
            window, lo = _task_unit_window(order, iota, procs, avail, state)
            if window:
                others = state.zero
                for value, idx in window[:-1]:
                    shares[(tid, idx)] = value
                    others += value
                last_value, last_idx = window[-1]
                last_share = min(avail - others, last_value)
                if last_share > 0:
                    shares[(tid, last_idx)] = last_share
                    new_rem = last_value - last_share
                else:
                    # degenerate tie: max W gets nothing; it must be
                    # unstarted (the started job is never starved)
                    if iota == last_idx:
                        raise RuntimeError(
                            "started job starved — engine invariant broken"
                        )
                    new_rem = last_value
                    window = window[:-1]
                # remove window jobs from the order, re-insert ι
                served = {idx for _, idx in window}
                order = [(v, i) for v, i in order if i not in served]
                if new_rem > 0 and last_share > 0:
                    self.iotas[cur] = last_idx
                    insort(order, (new_rem, last_idx))
                else:
                    if self.iotas[cur] in served:
                        self.iotas[cur] = None
                orders[cur] = order
                if not order:
                    self.completion[tid] = t
                    self.iotas[cur] = None
                    cur += 1
        self.cur = cur
        if not shares:
            raise RuntimeError(
                "engine made no progress with unfinished tasks remaining"
            )
        used = state.zero
        for v in shares.values():
            used += v
        return StepDecision(
            shares=shares,
            count=1,
            case="seq",
            window=packed,
            used=used,
            assign_processors=False,
        )


def _task_unit_window(order, iota, size, budget, state):
    """m-maximal window over one task's virtual order: seed at ι (or the
    left border), grow left, grow right, move right while the leftmost
    entry is unstarted.  Returns the window slice and its start index."""
    if not order:
        return [], 0
    if iota is None:
        lo = hi = 0
        r_w = state.zero
    else:
        pos = None
        for p, (_, idx) in enumerate(order):
            if idx == iota:
                pos = p
                break
        if pos is None:
            raise RuntimeError("started job lost from task order")
        lo, hi = pos, pos + 1
        r_w = order[pos][0]
    while hi - lo < size and lo > 0 and r_w < budget:
        lo -= 1
        r_w += order[lo][0]
    while r_w < budget and hi < len(order) and hi - lo < size:
        r_w += order[hi][0]
        hi += 1
    while (
        r_w < budget
        and hi < len(order)
        and (iota is None or order[lo][1] != iota)
    ):
        r_w -= order[lo][0]
        lo += 1
        r_w += order[hi][0]
        hi += 1
    return order[lo:hi], lo


# ---------------------------------------------------------------------------
# Generic window/assignment helpers (used by the online policy)
# ---------------------------------------------------------------------------


def compute_window(
    state: EngineState, previous: List, size: int, budget, universe: List
) -> List:
    """Lines 2-5 of Listing 1 over an explicit *universe* (sorted eligible
    job keys): intersect with the universe, grow left (property-(b)
    gated), grow right, move right."""
    R = state.req
    alive = set(universe)
    window = [j for j in previous if j in alive]
    if window:
        lo = bisect_left(universe, window[0])
        r_wo_max = 0
        for j in window:
            r_wo_max += R[j]
        r_wo_max -= R[window[-1]]
    else:
        lo = 0
        r_wo_max = 0
    while len(window) < size and lo > 0:
        new_job = universe[lo - 1]
        if r_wo_max + R[new_job] >= budget:
            break
        window.insert(0, new_job)
        r_wo_max += R[new_job]
        lo -= 1
    if window:
        r_w = r_wo_max + R[window[-1]]
        hi = bisect_right(universe, window[-1])
    else:
        r_w = 0
        hi = 0
    len_u = len(universe)
    while r_w < budget and hi < len_u and len(window) < size:
        new_job = universe[hi]
        window.append(new_job)
        r_w += R[new_job]
        hi += 1
    if window:
        while (
            r_w < budget
            and hi < len_u
            and not state.is_started(window[0])
        ):
            dropped = window.pop(0)
            r_w -= R[dropped]
            new_job = universe[hi]
            window.append(new_job)
            r_w += R[new_job]
            hi += 1
    return window


class WindowAssignment:
    """Share vector + bookkeeping facts of one Listing-1 assignment."""

    __slots__ = ("shares", "case", "extra_started", "waste", "used")

    def __init__(self) -> None:
        self.shares: Dict = {}
        self.case = ""
        self.extra_started = None
        self.waste = 0
        self.used = 0


def compute_assignment(
    state: EngineState,
    window: List,
    budget,
    universe: List,
    allow_extra_start: bool = True,
    strict: bool = True,
) -> WindowAssignment:
    """Listing 1 lines 6-20 over an explicit universe (cf. the reference
    ``core/assignment.compute_assignment``); shares are capped at
    ``min(r_j, s_j(t-1))``, waste is explicit."""
    S = state.remaining
    R = state.req
    result = WindowAssignment()
    if not window:
        result.waste = budget
        return result
    iota = None
    for j in window:
        if S[j] % R[j]:
            if iota is not None:
                if strict:
                    fractured = [jj for jj in window if S[jj] % R[jj]]
                    raise RuntimeError(
                        f"window invariant broken: {len(fractured)} "
                        f"fractured jobs ({fractured}); the "
                        "algorithm guarantees at most one"
                    )
                break
            iota = j
    max_w = window[-1]
    r_w_minus_f = 0
    for j in window:
        if j != iota:
            r_w_minus_f += R[j]
    shares = result.shares

    if r_w_minus_f >= budget:
        # ------------------------------- Case 1 --------------------------
        result.case = "case1"
        if iota == max_w:
            if strict:
                raise RuntimeError(
                    "Case 1 with fractured max W contradicts window "
                    "property (b)"
                )
            iota = None  # tolerant mode: demote ι
        used = 0
        for j in window:
            if j == iota or j == max_w:
                continue
            rj = R[j]
            share = rj if rj < S[j] else S[j]
            shares[j] = share
            used += share
        if iota is not None:
            q = S[iota] % R[iota]
            shares[iota] = q
            used += q
        remaining = budget - used
        if remaining < 0:
            raise RuntimeError("resource overuse in Case 1 assignment")
        share = remaining
        if R[max_w] < share:
            share = R[max_w]
        if S[max_w] < share:
            share = S[max_w]
        if share > 0:
            shares[max_w] = share
        result.waste = budget - used - share
        result.used = used + share
    else:
        # ------------------------------- Case 2 --------------------------
        result.case = "case2"
        used = 0
        for j in window:
            if j == iota:
                continue
            rj = R[j]
            share = rj if rj < S[j] else S[j]
            shares[j] = share
            used += share
        leftover = budget - used
        iota_finishing = iota is None
        if iota is not None:
            share = leftover
            if R[iota] < share:
                share = R[iota]
            if S[iota] < share:
                share = S[iota]
            if share > 0:
                shares[iota] = share
            iota_finishing = share == S[iota]
            used += share
            leftover -= share
        # the reserved-processor start must not create a second fracture:
        # only taken when no fractured job survives this step
        if leftover > 0 and allow_extra_start and iota_finishing:
            hi = bisect_right(universe, window[-1])
            if hi < len(universe):
                new_job = universe[hi]
                share = leftover
                if R[new_job] < share:
                    share = R[new_job]
                if S[new_job] < share:
                    share = S[new_job]
                if share > 0:
                    shares[new_job] = share
                    result.extra_started = new_job
                    used += share
                    leftover -= share
        result.waste = leftover
        result.used = used
    return result


# ---------------------------------------------------------------------------
# Online layer — arrival-aware window and list-scheduling policies
# ---------------------------------------------------------------------------


class OnlineWindowPolicy:
    """Arrival-aware Listing 1: per step, the window machinery runs over
    the *released and unfinished* jobs only.  Steps with nothing released
    are idle decisions (empty share vector, zero utilization)."""

    def __init__(self, budget, size: int, release_of: Dict) -> None:
        self.budget = budget
        self.size = size
        self.release_of = release_of
        self.window: List = []
        self.t = 0

    def decide(self, state: EngineState) -> StepDecision:
        self.t += 1
        t = self.t
        rel = self.release_of
        universe = [j for j in state._unfinished if rel[j] <= t]
        if not universe:
            # idle step: nothing released yet
            return StepDecision(
                shares={},
                case="idle",
                used=state.zero,
                assign_processors=False,
            )
        window = compute_window(
            state, self.window, self.size, self.budget, universe
        )
        assignment = compute_assignment(
            state, window, self.budget, universe
        )
        decision = StepDecision(
            shares=assignment.shares,
            case=assignment.case,
            window=list(window),
            waste=assignment.waste,
            used=assignment.used,
            assign_processors=False,
        )
        if assignment.extra_started is not None:
            window = sorted(set(window) | {assignment.extra_started})
        self.window = window
        return decision


class OnlineListPolicy:
    """Online list-scheduling baseline: full allocations only, FIFO by
    release (ties by requirement)."""

    def __init__(self, budget, m: int, release_of: Dict) -> None:
        self.budget = budget
        self.m = m
        self.release_of = release_of
        self.t = 0

    def decide(self, state: EngineState) -> StepDecision:
        self.t += 1
        t = self.t
        S = state.remaining
        R = state.req
        B = self.budget
        rel = self.release_of
        shares: Dict = {}
        used = state.zero
        slots = self.m
        for job_id in state._unfinished:
            if state.is_started(job_id):
                full = min(R[job_id], B, S[job_id])
                shares[job_id] = full
                used += full
                slots -= 1
        fresh = sorted(
            (
                j
                for j in state._unfinished
                if not state.is_started(j) and rel[j] <= t
            ),
            key=lambda j: (rel[j], R[j], j),
        )
        for job_id in fresh:
            if slots <= 0:
                break
            full = min(R[job_id], B)
            if used + full <= B:
                share = min(full, S[job_id])
                shares[job_id] = share
                used += share
                slots -= 1
        return StepDecision(
            shares=shares, case="list", used=used, assign_processors=False
        )


# ---------------------------------------------------------------------------
# Fixed-assignment layer — per-step resource distribution among queue heads
# ---------------------------------------------------------------------------


class AssignedQueuePolicy:
    """Work-conserving head-of-queue distribution (``smallest_first``,
    ``largest_first`` or ``proportional``).  ``queues`` holds one job-key
    list per processor in queue order; heads advance as jobs finish.

    The ``proportional`` policy uses exact division, which does not stay
    on the scaled-integer lattice — entry points resolve its backend to
    the exact context (see ``repro.assigned.scheduler``)."""

    def __init__(self, budget, queues: Sequence[Sequence], policy: str) -> None:
        self.budget = budget
        self.queues = [list(q) for q in queues]
        self.policy = policy
        self.heads = [0] * len(self.queues)

    def decide(self, state: EngineState) -> StepDecision:
        S = state.remaining
        R = state.req
        heads = self.heads
        current: List = []
        for i, queue in enumerate(self.queues):
            h = heads[i]
            while h < len(queue) and S[queue[h]] <= 0:
                h += 1
            heads[i] = h
            if h < len(queue):
                current.append(queue[h])
        raw = self._distribute(current, S, R)
        shares: Dict = {}
        used = state.zero
        for key in current:
            share = raw.get(key)
            if share is None or share <= 0:
                continue
            shares[key] = share
            used += share
        if used <= 0:
            raise RuntimeError("assigned scheduler made no progress")
        return StepDecision(
            shares=shares,
            case=self.policy,
            used=used,
            assign_processors=False,
        )

    def _distribute(self, current: List, S: Dict, R: Dict) -> Dict:
        budget = self.budget
        caps = {key: min(R[key], S[key]) for key in current}
        if self.policy == "proportional":
            total_req = 0
            for key in current:
                total_req += R[key]
            shares: Dict = {}
            left = budget
            # proportional seed, capped; then cascade the slack smallest-first
            for key in current:
                seed = budget * R[key] / total_req
                if caps[key] < seed:
                    seed = caps[key]
                shares[key] = seed
                left -= seed
            if left > 0:
                for key in sorted(current, key=lambda k: (R[k], k)):
                    room = caps[key] - shares[key]
                    if room <= 0:
                        continue
                    extra = min(room, left)
                    shares[key] += extra
                    left -= extra
                    if left <= 0:
                        break
            return shares
        reverse = self.policy == "largest_first"
        ordered = sorted(
            current, key=lambda k: (R[k], k), reverse=reverse
        )
        shares = {}
        left = budget
        for key in ordered:
            share = min(caps[key], left)
            if share > 0:
                shares[key] = share
                left -= share
            if left <= 0:
                break
        return shares
