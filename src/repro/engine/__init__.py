"""One backend-pluggable scheduling engine for every scheduler layer.

Structure (see DESIGN.md §4 and docs/PERFORMANCE.md):

* :mod:`repro.engine.backends` — the numeric-backend protocol
  (:class:`~repro.engine.backends.base.NumericContext`) with the exact
  rational and LCM-rescaled integer implementations;
* :mod:`repro.engine.state` — the shared :class:`EngineState`
  bookkeeping (remaining work, processors, trace, statistics);
* :mod:`repro.engine.loop` — the single step loop driving pluggable
  policies (:class:`StepDecision`);
* :mod:`repro.engine.policies` — per-layer policies (general SRJ
  window, unit-size window, sequential SRT, online, fixed-assignment);
* :mod:`repro.engine.trace` — the canonical RLE trace representation
  (:class:`TraceRun` / :class:`SRJResult`);
* :mod:`repro.engine.api` — entry points that wire context + state +
  policy together and emit exact-valued results.

``state``/``loop``/``policies`` are generic over the numeric backend and
must stay free of exact-rational arithmetic (the ``hotpath-exact``
rule of ``make lint`` — see ``docs/STATIC_ANALYSIS.md``).
"""

from .api import (
    run_assigned,
    run_online,
    run_online_list,
    run_sequential_tasks,
    run_serial,
    run_unit,
    solve_srj,
    unit_makespan,
)
from .backends import BACKENDS, make_context, resolve_backend
from .loop import StepDecision, run_loop
from .state import EngineState
from .trace import SRJResult, TraceRun

__all__ = [
    "BACKENDS",
    "EngineState",
    "SRJResult",
    "StepDecision",
    "TraceRun",
    "make_context",
    "resolve_backend",
    "run_assigned",
    "run_loop",
    "run_online",
    "run_online_list",
    "run_sequential_tasks",
    "run_serial",
    "run_unit",
    "solve_srj",
    "unit_makespan",
]
