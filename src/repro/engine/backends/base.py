"""Numeric-backend protocol for the scheduling engine.

A *numeric context* fixes the number representation a scheduler run uses.
The engine's step loops (:mod:`repro.engine.loop`, :mod:`repro.engine.state`,
:mod:`repro.engine.policies`) are written **generically** over scaled
quantities: they only ever add, subtract, multiply by an ``int``, take
``min``/``max``, compare, and use ``//``/``%`` — operations under which both
:class:`fractions.Fraction` and ``int`` are closed.  Everything that is
representation-specific lives behind this protocol:

* ``scale``   — embed an exact rational input into the working domain;
* ``to_fraction`` — convert a scaled quantity back to an exact
  :class:`~fractions.Fraction` (used once, when emitting results);
* ``steps_until_status_change`` — the bulk-horizon congruence of the
  accelerated scheduler (Theorem 3.3), whose solution needs
  representation-aware integer arithmetic;
* ``zero`` — the additive identity in the working domain (so generic code
  never constructs a literal of either type).

Two implementations ship: :class:`repro.engine.backends.fraction
.FractionContext` (the exact reference domain) and
:class:`repro.engine.backends.integer.IntegerContext` (the LCM-rescaled
integer domain; see docs/PERFORMANCE.md for the exactness argument).
"""

from __future__ import annotations

from typing import Optional, Protocol, runtime_checkable


@runtime_checkable
class NumericContext(Protocol):
    """Backend-specific numeric operations for one scheduler run."""

    #: backend name ("fraction" or "int")
    name: str
    #: additive identity in the working domain
    zero: object

    def scale(self, value):
        """Embed an exact rational *value* into the working domain."""
        ...  # pragma: no cover - protocol

    def to_fraction(self, value):
        """Convert a scaled quantity back to an exact Fraction."""
        ...  # pragma: no cover - protocol

    def steps_until_status_change(self, a, c, r) -> Optional[int]:
        """Smallest ``i >= 1`` such that subtracting ``i*c`` from remaining
        *a* flips the fractured predicate (``a mod r != 0``), or ``None``
        if the status never changes before the job finishes."""
        ...  # pragma: no cover - protocol
