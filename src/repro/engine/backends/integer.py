"""LCM-rescaled exact integer backend.

**Scaling argument** (generalizing ``perf/intkernel.py`` from PR 1 to every
engine policy).  Let ``D`` be the least common multiple of the denominators
of the step budget ``R`` and all per-job requirements ``r_j``.  Rescale
every quantity by ``D``: ``R_j := D·r_j``, ``S_j := D·s_j = p_j·R_j``,
``B := D·R`` — all integers.  Every quantity any engine policy derives from
these is obtained by sums, differences, integer multiples and minima, so by
induction every remaining requirement, share and waste stays an integer
multiple of ``1/D`` and is represented exactly by its scaled integer.
Every predicate — window feasibility ``r(W \\ {max W}) < R``, the Case-1/2
split ``r(W \\ F) ≥ R``, the fractured predicate ``s_j(t) mod r_j ≠ 0``,
the unit-algorithm virtual ordering, the Listing-3/4 task-packing test
``r(T) ≤ avail``, and the bulk-horizon congruence ``i·c ≡ a (mod r)``
(invariant under common scaling) — is decided identically, so traces,
makespans and completion times are **bit-for-bit equal** to the Fraction
backend (asserted property-based in ``tests/test_engine_backends.py`` and
``tests/test_perf_backends.py``).

The one operation *not* closed over the ``1/D`` lattice is exact division
(used by the ``proportional`` fixed-assignment policy); entry points that
need it resolve ``backend="int"`` to the fraction context instead (see
``repro.assigned.scheduler``).
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, Optional


def lcm_denominator(budget: Fraction, requirements: Iterable[Fraction]) -> int:
    """LCM ``D`` of the denominators of *budget* and all requirements.

    Since job sizes are integral, every initial quantity the schedulers
    work with becomes integral after scaling by ``D``.
    """
    d = budget.denominator
    for r in requirements:
        d = math.lcm(d, r.denominator)
    return d


def int_steps_until_status_change(a: int, c: int, r: int) -> Optional[int]:
    """Integer form of the bulk-horizon congruence (see the fraction
    backend's ``steps_until_status_change``).

    The congruence is invariant under the common scaling by ``D``, so the
    answer equals the Fraction version's exactly.
    """
    if c <= 0 or c >= r:
        return None
    if a % r == 0:
        return 1
    g = math.gcd(c, r)
    if a % g != 0:
        return None
    r_red = r // g
    if r_red == 1:
        return 1
    i0 = (a // g) * pow(c // g, -1, r_red) % r_red
    return i0 if i0 >= 1 else r_red


class IntegerContext:
    """Working domain: integers scaled by the instance LCM ``D``."""

    name = "int"
    zero = 0

    def __init__(self, denominator: int) -> None:
        if denominator < 1:
            raise ValueError("scaling denominator must be >= 1")
        self.denominator = denominator
        self._frac_cache: Dict[int, Fraction] = {}

    def scale(self, value: Fraction) -> int:
        return value.numerator * (self.denominator // value.denominator)

    def to_fraction(self, value: int) -> Fraction:
        f = self._frac_cache.get(value)
        if f is None:
            f = self._frac_cache[value] = Fraction(value, self.denominator)
        return f

    def steps_until_status_change(self, a: int, c: int, r: int) -> Optional[int]:
        return int_steps_until_status_change(a, c, r)

    @classmethod
    def build(
        cls, budget: Fraction, requirements: Iterable[Fraction]
    ) -> "IntegerContext":
        return cls(lcm_denominator(budget, requirements))
