"""Numeric backends for the scheduling engine.

``"fraction"`` is the exact reference domain (:class:`FractionContext`);
``"int"`` is the LCM-rescaled integer domain (:class:`IntegerContext`),
bit-for-bit identical and typically an order of magnitude faster;
``"auto"`` picks the integer backend.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Iterable

from .base import NumericContext
from .fraction import FractionContext, steps_until_status_change
from .integer import IntegerContext, int_steps_until_status_change, lcm_denominator

#: accepted values for every ``backend=`` parameter in the repo
BACKENDS = ("auto", "fraction", "int")


def resolve_backend(backend: str) -> str:
    """Validate *backend* and resolve ``"auto"`` (to ``"int"``)."""
    if backend not in BACKENDS:
        raise ValueError(
            f"unknown backend {backend!r}; choose from {BACKENDS}"
        )
    return "int" if backend == "auto" else backend


def make_context(
    backend: str, budget: Fraction, requirements: Iterable[Fraction]
) -> NumericContext:
    """Build the numeric context for a resolved *backend* name."""
    kind = resolve_backend(backend)
    if kind == "fraction":
        return FractionContext.build(budget, requirements)
    return IntegerContext.build(budget, requirements)


__all__ = [
    "BACKENDS",
    "NumericContext",
    "FractionContext",
    "IntegerContext",
    "lcm_denominator",
    "int_steps_until_status_change",
    "steps_until_status_change",
    "resolve_backend",
    "make_context",
]
