"""Exact :class:`fractions.Fraction` numeric backend (the reference domain).

Scaling is the identity: the engine's generic step loops run directly on
``Fraction`` values, reproducing the original reference schedulers
operation for operation.  This is the only engine module (besides the
result emitters) allowed to touch :mod:`fractions` — the
``hotpath-exact`` lint rule enforces that the generic loop/state/policy
modules stay representation agnostic.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Optional


def steps_until_status_change(
    remaining: Fraction, share: Fraction, requirement: Fraction
) -> Optional[int]:
    """Smallest ``i ≥ 1`` such that subtracting ``i·share`` from *remaining*
    flips the fractured predicate (``remaining mod requirement ≠ 0``), or
    None if the status never changes before the job finishes.

    Solved exactly by reducing to the congruence ``i·C ≡ A (mod R)`` over
    the integers obtained by clearing denominators.
    """
    if share <= 0 or share >= requirement:
        # full-requirement (or zero) shares preserve the fractured predicate
        return None
    lcm_den = math.lcm(
        remaining.denominator, share.denominator, requirement.denominator
    )
    a = remaining.numerator * (lcm_den // remaining.denominator)
    c = share.numerator * (lcm_den // share.denominator)
    r = requirement.numerator * (lcm_den // requirement.denominator)
    if a % r == 0:
        # currently unfractured; one partial step fractures it
        return 1
    # fractured now: find smallest i >= 1 with i*c ≡ a (mod r)
    g = math.gcd(c, r)
    if a % g != 0:
        return None
    r_red = r // g
    if r_red == 1:
        return 1
    i0 = (a // g) * pow(c // g, -1, r_red) % r_red
    return i0 if i0 >= 1 else r_red


class FractionContext:
    """Identity scaling: the working domain *is* ``Fraction``."""

    name = "fraction"
    zero = Fraction(0)

    def scale(self, value: Fraction) -> Fraction:
        return value

    def to_fraction(self, value: Fraction) -> Fraction:
        return value

    def steps_until_status_change(
        self, a: Fraction, c: Fraction, r: Fraction
    ) -> Optional[int]:
        return steps_until_status_change(a, c, r)

    @classmethod
    def build(
        cls, budget: Fraction, requirements: Iterable[Fraction]
    ) -> "FractionContext":
        # requirements are irrelevant for the identity scaling
        return cls()
