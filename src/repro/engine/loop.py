"""The engine step loop: repeatedly ask a policy for a decision, apply it.

This is the single driver behind every scheduler layer in the repo
(core SRJ sliding window, unit-size variant, sequential SRT engine,
online arrival model, fixed-assignment queues, and the vetting
simulator).  A *policy* is any object with a ``decide(state)`` method
returning a :class:`StepDecision`; the loop itself is representation
agnostic and contains no arithmetic beyond the iteration guard (the
``hotpath-exact`` lint rule enforces this, ``docs/STATIC_ANALYSIS.md``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional


@dataclass
class StepDecision:
    """One policy decision: a share vector applied for *count* steps.

    ``waste`` and ``used`` live in the working domain of the engine state's
    numeric context; ``waste`` defaults to the neutral 0, which is exact in
    every backend.  ``window`` is the trace's window annotation (job keys
    for window schedulers, task ids for the SRT engine).  Policies that
    manage processors themselves set ``assign_processors=False``.
    """

    shares: Dict
    count: int = 1
    case: str = ""
    window: List = field(default_factory=list)
    waste: object = 0
    full_jobs_step: bool = False
    full_resource_step: bool = False
    used: object = None
    assign_processors: bool = True


class Policy:
    """Protocol-by-convention: anything with ``decide(state)``."""

    def decide(self, state) -> StepDecision:  # pragma: no cover - interface
        raise NotImplementedError


def run_loop(
    state,
    policy,
    max_iters: int,
    cap_error: Callable[[], Exception],
    on_finish: Optional[Callable] = None,
    observer=None,
    step_limit: Optional[int] = None,
) -> None:
    """Drive *policy* over *state* until no unfinished job remains.

    Raises the exception built by ``cap_error()`` after *max_iters*
    decisions — a generous guard that catches non-termination bugs instead
    of hanging.  ``on_finish(finished_keys)`` is invoked after every
    decision that completed at least one job (used by front-ends that react
    to completions, e.g. arrival admission).

    *observer* (a :class:`repro.obs.Observer`, duck-typed) receives
    ``on_decision(state, decision)`` after every applied decision — i.e.
    once per run-length-encoded trace run, not per time step.  The
    un-observed path is kept as a separate loop so installing no observer
    costs nothing (the dispatch overhead of an installed no-op observer is
    gated by ``benchmarks/bench_obs_overhead.py``).

    *step_limit* stops the run after exactly that many time steps (the
    fault-tolerant runner's segment horizon): the final bulk decision is
    truncated to land on the limit.  Truncating is safe because the loop
    exits immediately afterwards — the policy's internal bookkeeping is
    never consulted again.  The bounded variant is a separate loop so the
    unbounded hot path stays comparison-free.
    """
    guard = 0
    if step_limit is not None:
        on_decision = observer.on_decision if observer is not None else None
        while state._unfinished and state.t < step_limit:
            guard += 1
            if guard > max_iters:
                raise cap_error()
            decision = policy.decide(state)
            room = step_limit - state.t
            if decision.count > room:
                decision.count = room
            finished = state.apply_decision(decision)
            if on_decision is not None:
                on_decision(state, decision)
            if finished and on_finish is not None:
                on_finish(finished)
        return
    if observer is None:
        while state._unfinished:
            guard += 1
            if guard > max_iters:
                raise cap_error()
            finished = state.apply_decision(policy.decide(state))
            if finished and on_finish is not None:
                on_finish(finished)
        return
    # hoisted bound methods: the observed loop must stay within 5% of the
    # bare one with a no-op observer installed (bench_obs_overhead gate)
    decide = policy.decide
    apply_decision = state.apply_decision
    on_decision = observer.on_decision
    while state._unfinished:
        guard += 1
        if guard > max_iters:
            raise cap_error()
        decision = decide(state)
        finished = apply_decision(decision)
        on_decision(state, decision)
        if finished and on_finish is not None:
            on_finish(finished)
