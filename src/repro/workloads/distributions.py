"""Random quantity distributions, discretized to exact Fractions.

All generators take a :class:`random.Random` instance (deterministic under a
seed) and emit :class:`fractions.Fraction` values with bounded denominators,
so downstream exact arithmetic stays fast and the fractured/feasibility
predicates are decided exactly.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List


def uniform_fractions(
    rng: random.Random,
    n: int,
    lo: Fraction = Fraction(1, 20),
    hi: Fraction = Fraction(1, 1),
    denominator: int = 120,
) -> List[Fraction]:
    """n values ~ Uniform[lo, hi], snapped to multiples of 1/denominator
    (and clamped to stay positive)."""
    if lo <= 0 or hi < lo:
        raise ValueError("need 0 < lo <= hi")
    out = []
    lo_num = int(lo * denominator)
    hi_num = int(hi * denominator)
    for _ in range(n):
        num = rng.randint(max(lo_num, 1), max(hi_num, 1))
        out.append(Fraction(num, denominator))
    return out


def bimodal_fractions(
    rng: random.Random,
    n: int,
    low_center: Fraction = Fraction(1, 10),
    high_center: Fraction = Fraction(3, 4),
    spread: Fraction = Fraction(1, 20),
    high_prob: float = 0.3,
    denominator: int = 120,
) -> List[Fraction]:
    """Mixture of two uniform humps: mostly small requirements with a heavy
    minority of large ones — the "some jobs are data-intensive, most are
    not" scenario from the paper's introduction."""
    out = []
    for _ in range(n):
        center = high_center if rng.random() < high_prob else low_center
        lo = max(center - spread, Fraction(1, denominator))
        hi = center + spread
        num = rng.randint(int(lo * denominator), int(hi * denominator))
        out.append(Fraction(max(num, 1), denominator))
    return out


def heavy_tail_fractions(
    rng: random.Random,
    n: int,
    alpha: float = 1.5,
    scale: Fraction = Fraction(1, 20),
    cap: Fraction = Fraction(3, 1),
    denominator: int = 120,
) -> List[Fraction]:
    """Pareto(alpha)-distributed requirements (heavy tail), capped at *cap*.

    Values may exceed 1 — such jobs can never absorb their full requirement
    in one step and act as resource hogs (the big-data regime motivating
    the model)."""
    if alpha <= 0:
        raise ValueError("alpha must be positive")
    out = []
    for _ in range(n):
        u = rng.random()
        value = float(scale) * (1.0 - u) ** (-1.0 / alpha)
        value = min(value, float(cap))
        num = max(int(round(value * denominator)), 1)
        out.append(Fraction(num, denominator))
    return out


def geometric_sizes(
    rng: random.Random, n: int, mean: float = 3.0, cap: int = 50
) -> List[int]:
    """Geometric job sizes with the given mean, capped."""
    if mean < 1:
        raise ValueError("mean must be >= 1")
    p = 1.0 / mean
    out = []
    for _ in range(n):
        size = 1
        while size < cap and rng.random() > p:
            size += 1
        out.append(size)
    return out


def uniform_sizes(rng: random.Random, n: int, lo: int = 1, hi: int = 10) -> List[int]:
    """Uniform integer sizes in [lo, hi]."""
    if lo < 1 or hi < lo:
        raise ValueError("need 1 <= lo <= hi")
    return [rng.randint(lo, hi) for _ in range(n)]
