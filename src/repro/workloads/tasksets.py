"""Synthetic SRT task-set generators (cloud-composed-service workloads).

Tasks model composed cloud services: an application (task) consists of many
small parallel services (unit jobs), each with its own bandwidth demand.
Generators produce heavy-only, light-only and mixed populations relative to
the Section 4.2 partition threshold ``1/(m-1)``.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List

from ..tasks.model import TaskInstance


def heavy_taskset(
    rng: random.Random,
    m: int,
    k: int,
    jobs_lo: int = 2,
    jobs_hi: int = 8,
    denominator: int = 120,
) -> TaskInstance:
    """k tasks whose jobs all exceed the heavy threshold ``1/(m-1)``."""
    if m < 3:
        raise ValueError("heavy tasks need m >= 3")
    lo_num = denominator // (m - 1) + 1  # strictly above 1/(m-1)
    lists: List[List[Fraction]] = []
    for _ in range(k):
        n_jobs = rng.randint(jobs_lo, jobs_hi)
        lists.append(
            [
                Fraction(rng.randint(lo_num, denominator), denominator)
                for _ in range(n_jobs)
            ]
        )
    return TaskInstance.create(m, lists)


def light_taskset(
    rng: random.Random,
    m: int,
    k: int,
    jobs_lo: int = 3,
    jobs_hi: int = 20,
    denominator: int = 240,
) -> TaskInstance:
    """k tasks whose jobs all lie at or below the threshold ``1/(m-1)``."""
    if m < 3:
        raise ValueError("light tasks need m >= 3")
    hi_num = max(denominator // (m - 1), 1)  # at most 1/(m-1)
    lists: List[List[Fraction]] = []
    for _ in range(k):
        n_jobs = rng.randint(jobs_lo, jobs_hi)
        lists.append(
            [
                Fraction(rng.randint(1, hi_num), denominator)
                for _ in range(n_jobs)
            ]
        )
    return TaskInstance.create(m, lists)


def mixed_taskset(
    rng: random.Random,
    m: int,
    k: int,
    heavy_prob: float = 0.5,
    denominator: int = 240,
) -> TaskInstance:
    """Mixture of heavy-ish and light-ish tasks (per-task coin flip).

    Individual tasks may straddle the threshold — the partition is decided
    by the *average* requirement, exactly as in the paper.
    """
    if m < 3:
        raise ValueError("mixed tasks need m >= 3")
    threshold_num = max(denominator // (m - 1), 1)
    lists: List[List[Fraction]] = []
    for _ in range(k):
        n_jobs = rng.randint(2, 15)
        if rng.random() < heavy_prob:
            reqs = [
                Fraction(
                    rng.randint(threshold_num + 1, denominator), denominator
                )
                for _ in range(n_jobs)
            ]
        else:
            reqs = [
                Fraction(rng.randint(1, threshold_num), denominator)
                for _ in range(n_jobs)
            ]
        lists.append(reqs)
    return TaskInstance.create(m, lists)


def cloud_taskset(
    rng: random.Random, m: int, k: int, denominator: int = 240
) -> TaskInstance:
    """Cloud-like population: task fan-out is heavy-tailed (most services
    are small compositions, a few are wide), bandwidth demands log-uniform."""
    if m < 3:
        raise ValueError("cloud tasks need m >= 3")
    lists: List[List[Fraction]] = []
    for _ in range(k):
        # heavy-tailed fan-out
        n_jobs = 1
        while n_jobs < 64 and rng.random() < 0.7:
            n_jobs += rng.randint(1, 3)
        reqs = []
        for _ in range(n_jobs):
            exponent = rng.uniform(-3.0, 0.0)  # 1/1000 .. 1
            value = 10.0 ** exponent
            num = max(int(round(value * denominator)), 1)
            reqs.append(Fraction(num, denominator))
        lists.append(reqs)
    return TaskInstance.create(m, lists)


TASKSET_FAMILIES = {
    "heavy": heavy_taskset,
    "light": light_taskset,
    "mixed": mixed_taskset,
    "cloud": cloud_taskset,
}


def make_taskset(
    family: str, rng: random.Random, m: int, k: int
) -> TaskInstance:
    """Dispatch on a family name from :data:`TASKSET_FAMILIES`."""
    try:
        gen = TASKSET_FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown taskset family {family!r}; choose from "
            f"{sorted(TASKSET_FAMILIES)}"
        ) from None
    return gen(rng, m, k)
