"""Synthetic SRJ instance generators — the workload families of DESIGN.md.

Families
--------
* ``uniform`` / ``bimodal`` / ``heavy_tail`` — requirement distributions of
  :mod:`repro.workloads.distributions` with independent sizes;
* ``correlated`` — requirement and size positively correlated (large jobs
  are also data-hungry), stressing the window's resource budget;
* ``anti_correlated`` — large jobs with tiny requirements (processor-bound
  mix), stressing the cardinality side;
* ``planted`` — instances with a *known optimal makespan*, built by
  generating a tight schedule first and reading the jobs off it
  (:func:`planted_instance`): every step uses the full resource and all
  ``m`` processors, so ``OPT`` equals the construction horizon exactly.
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Optional, Tuple

from ..core.instance import Instance
from .distributions import (
    bimodal_fractions,
    geometric_sizes,
    heavy_tail_fractions,
    uniform_fractions,
    uniform_sizes,
)


def uniform_instance(
    rng: random.Random,
    m: int,
    n: int,
    size_mean: float = 3.0,
    denominator: int = 120,
) -> Instance:
    """Uniform requirements in (0, 1], geometric sizes."""
    reqs = uniform_fractions(rng, n, denominator=denominator)
    sizes = geometric_sizes(rng, n, mean=size_mean)
    return Instance.from_requirements(m, reqs, sizes)


def bimodal_instance(rng: random.Random, m: int, n: int) -> Instance:
    """Bimodal requirements (small majority, large minority)."""
    reqs = bimodal_fractions(rng, n)
    sizes = geometric_sizes(rng, n)
    return Instance.from_requirements(m, reqs, sizes)


def heavy_tail_instance(rng: random.Random, m: int, n: int) -> Instance:
    """Pareto requirements with a cap; a few resource hogs dominate."""
    reqs = heavy_tail_fractions(rng, n)
    sizes = geometric_sizes(rng, n)
    return Instance.from_requirements(m, reqs, sizes)


def correlated_instance(
    rng: random.Random, m: int, n: int, denominator: int = 120
) -> Instance:
    """Requirement grows with size: big jobs are also bandwidth-hungry."""
    sizes = uniform_sizes(rng, n, 1, 10)
    reqs = []
    for p in sizes:
        base = Fraction(p, 12)  # in (0, 10/12]
        jitter = Fraction(rng.randint(1, denominator // 6), denominator)
        reqs.append(base / 2 + jitter)
    return Instance.from_requirements(m, reqs, sizes)


def anti_correlated_instance(
    rng: random.Random, m: int, n: int, denominator: int = 120
) -> Instance:
    """Large jobs have tiny requirements and vice versa."""
    sizes = uniform_sizes(rng, n, 1, 10)
    reqs = []
    for p in sizes:
        num = max(denominator // (p * 4) + rng.randint(-2, 2), 1)
        reqs.append(Fraction(num, denominator))
    return Instance.from_requirements(m, reqs, sizes)


def unit_instance(
    rng: random.Random,
    m: int,
    n: int,
    family: str = "uniform",
    denominator: int = 120,
) -> Instance:
    """Unit-size instance with the requested requirement family."""
    if family == "uniform":
        reqs = uniform_fractions(rng, n, denominator=denominator)
    elif family == "bimodal":
        reqs = bimodal_fractions(rng, n, denominator=denominator)
    elif family == "heavy_tail":
        reqs = heavy_tail_fractions(rng, n, denominator=denominator)
    else:
        raise ValueError(f"unknown family {family!r}")
    return Instance.from_requirements(m, reqs)


FAMILIES = {
    "uniform": uniform_instance,
    "bimodal": bimodal_instance,
    "heavy_tail": heavy_tail_instance,
    "correlated": correlated_instance,
    "anti_correlated": anti_correlated_instance,
    "unit": unit_instance,
}


def make_instance(
    family: str, rng: random.Random, m: int, n: int
) -> Instance:
    """Dispatch on a family name from :data:`FAMILIES`."""
    try:
        gen = FAMILIES[family]
    except KeyError:
        raise ValueError(
            f"unknown family {family!r}; choose from {sorted(FAMILIES)}"
        ) from None
    return gen(rng, m, n)


# ---------------------------------------------------------------------------
# Planted-optimum instances
# ---------------------------------------------------------------------------


def planted_instance(
    rng: random.Random,
    m: int,
    horizon: int,
    switch_prob: float = 0.4,
    denominator: int = 60,
) -> Tuple[Instance, int]:
    """Generate an instance whose optimal makespan is *horizon* exactly.

    Construction: an ``m × horizon`` grid where every processor runs one job
    at a time with a constant share; column sums are always exactly 1, so
    the resource lower bound equals ``horizon`` and the construction itself
    is a feasible schedule attaining it (hence ``OPT = horizon``).

    At each step, with probability *switch_prob* two processors end their
    current jobs simultaneously and re-split their combined share randomly;
    additionally each processor's job ends independently with small
    probability (keeping its share for the successor job).

    Returns ``(instance, horizon)``.
    """
    if m < 1 or horizon < 1:
        raise ValueError("need m >= 1 and horizon >= 1")
    # current share per processor (sums to 1)
    shares = _random_simplex(rng, m, denominator)
    # per processor: (share, start_time) of the running job
    running: List[Tuple[Fraction, int]] = [(shares[i], 0) for i in range(m)]
    jobs: List[Tuple[int, Fraction]] = []  # (size, requirement)

    def finish(proc: int, t: int) -> None:
        share, start = running[proc]
        length = t - start
        if length > 0 and share > 0:
            jobs.append((length, share))

    for t in range(1, horizon):
        if m >= 2 and rng.random() < switch_prob:
            a, b = rng.sample(range(m), 2)
            combined = running[a][0] + running[b][0]
            num = int(combined * denominator)
            if num >= 2:
                # both shares must stay strictly positive so that every
                # column of the grid sums to exactly 1 with all m
                # processors productive — this is what pins OPT = horizon
                finish(a, t)
                finish(b, t)
                cut = rng.randint(1, num - 1)
                new_a = Fraction(cut, denominator)
                new_b = combined - new_a
                running[a] = (new_a, t)
                running[b] = (new_b, t)
        elif rng.random() < switch_prob / 2:
            p = rng.randrange(m)
            finish(p, t)
            running[p] = (running[p][0], t)
    for p in range(m):
        finish(p, horizon)
    sizes = [sz for sz, _ in jobs]
    reqs = [r for _, r in jobs]
    inst = Instance.from_requirements(m, reqs, sizes)
    return inst, horizon


def _random_simplex(
    rng: random.Random, m: int, denominator: int
) -> List[Fraction]:
    """Random point on the unit simplex with denominator-bounded entries,
    each entry strictly positive."""
    if m == 1:
        return [Fraction(1)]
    # stars and bars with at least one unit per processor
    total = denominator
    if total < m:
        total = m
    cuts = sorted(rng.sample(range(1, total), m - 1))
    parts = []
    prev = 0
    for c in cuts:
        parts.append(Fraction(c - prev, total))
        prev = c
    parts.append(Fraction(total - prev, total))
    return parts
