"""Synthetic workload generators for all experiments (DESIGN.md §3)."""

from .adversarial import (
    next_fit_adversarial_items,
    resource_cliff_instance,
    sawtooth_instance,
    three_partition_instance,
)
from .distributions import (
    bimodal_fractions,
    geometric_sizes,
    heavy_tail_fractions,
    uniform_fractions,
    uniform_sizes,
)
from .generators import (
    FAMILIES,
    anti_correlated_instance,
    bimodal_instance,
    correlated_instance,
    heavy_tail_instance,
    make_instance,
    planted_instance,
    uniform_instance,
    unit_instance,
)
from .tasksets import (
    TASKSET_FAMILIES,
    cloud_taskset,
    heavy_taskset,
    light_taskset,
    make_taskset,
    mixed_taskset,
)
from .traces import (
    TraceBurst,
    synthesize_bursts,
    trace_instance,
    trace_taskset,
)

__all__ = [
    "FAMILIES",
    "make_instance",
    "uniform_instance",
    "bimodal_instance",
    "heavy_tail_instance",
    "correlated_instance",
    "anti_correlated_instance",
    "unit_instance",
    "planted_instance",
    "three_partition_instance",
    "next_fit_adversarial_items",
    "sawtooth_instance",
    "resource_cliff_instance",
    "uniform_fractions",
    "bimodal_fractions",
    "heavy_tail_fractions",
    "geometric_sizes",
    "uniform_sizes",
    "TraceBurst",
    "synthesize_bursts",
    "trace_instance",
    "trace_taskset",
    "TASKSET_FAMILIES",
    "make_taskset",
    "heavy_taskset",
    "light_taskset",
    "mixed_taskset",
    "cloud_taskset",
]
