"""Cluster-trace-flavored workloads (substitution for production traces).

Real evaluations of shared-bandwidth schedulers would replay production
cluster traces (job sizes and bandwidth demands from, e.g., a Google/Borg
or Alibaba trace).  Those are unavailable offline, so — per the
reproduction's substitution rule (DESIGN.md §3) — this module synthesizes
workloads with the *statistical signatures* such traces exhibit:

* heavy-tailed job sizes (a few elephants, many mice);
* diurnal batching: jobs arrive in bursts of correlated type;
* per-burst coherence: jobs submitted together have similar bandwidth
  demands (same application class).

The SRJ model is offline, so "arrival bursts" only shape the *composition*
of the instance, not release times; the burst structure is returned so SRT
experiments can treat each burst as a task.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from fractions import Fraction
from typing import List, Tuple

from ..core.instance import Instance
from ..tasks.model import TaskInstance


@dataclass(frozen=True)
class TraceBurst:
    """One arrival burst: an application class submitting related jobs."""

    app_class: str
    sizes: Tuple[int, ...]
    requirements: Tuple[Fraction, ...]


#: application classes: (name, size range, requirement center/denominator)
_APP_CLASSES = [
    ("web", (1, 2), (2, 120)),          # tiny, low bandwidth
    ("analytics", (3, 12), (18, 120)),  # medium, moderate bandwidth
    ("backup", (6, 30), (75, 120)),     # long, bandwidth-hungry
    ("ml-train", (10, 40), (40, 120)),  # long, moderate bandwidth
    ("shuffle", (1, 4), (100, 120)),    # short, saturating
]


def synthesize_bursts(
    rng: random.Random,
    n_bursts: int,
    burst_size_mean: float = 6.0,
) -> List[TraceBurst]:
    """Generate arrival bursts with per-class coherent demands."""
    if n_bursts < 1:
        raise ValueError("n_bursts must be >= 1")
    bursts = []
    for _ in range(n_bursts):
        name, (p_lo, p_hi), (center, denom) = rng.choice(_APP_CLASSES)
        count = 1
        while rng.random() < 1 - 1 / burst_size_mean and count < 40:
            count += 1
        sizes = tuple(rng.randint(p_lo, p_hi) for _ in range(count))
        reqs = tuple(
            Fraction(
                max(center + rng.randint(-center // 3 - 1, center // 3 + 1), 1),
                denom,
            )
            for _ in range(count)
        )
        bursts.append(
            TraceBurst(app_class=name, sizes=sizes, requirements=reqs)
        )
    return bursts


def trace_instance(
    rng: random.Random, m: int, n_bursts: int
) -> Tuple[Instance, List[TraceBurst]]:
    """Flatten bursts into an offline SRJ instance."""
    bursts = synthesize_bursts(rng, n_bursts)
    sizes: List[int] = []
    reqs: List[Fraction] = []
    for burst in bursts:
        sizes.extend(burst.sizes)
        reqs.extend(burst.requirements)
    return Instance.from_requirements(m, reqs, sizes), bursts


def trace_taskset(
    rng: random.Random, m: int, n_bursts: int
) -> TaskInstance:
    """Each burst becomes one SRT task of unit jobs (job 'size' folds into
    repeated unit jobs, matching Section 4's unit-size task model)."""
    bursts = synthesize_bursts(rng, n_bursts)
    lists: List[List[Fraction]] = []
    for burst in bursts:
        jobs: List[Fraction] = []
        for size, req in zip(burst.sizes, burst.requirements):
            jobs.extend([req] * min(size, 8))
        lists.append(jobs)
    return TaskInstance.create(m, lists)
