"""Adversarial and hardness-flavored instance families.

* :func:`three_partition_instance` — the NP-hardness gadget (Theorem 2.1 /
  Chung et al. [4]): a 3-Partition instance ``a_1..a_{3q}`` with
  ``Σ a_i = qB`` and ``B/4 < a_i < B/2`` becomes ``3q`` unit-size jobs with
  ``r_i = a_i / B`` on ``m = 3`` processors.  A YES instance packs into
  exactly ``q`` full time steps (three jobs per step, shares summing to 1),
  so ``OPT = q``; NO instances force ``OPT > q``.  We generate *planted YES*
  instances (draw the triples first), so the optimum is known.
* :func:`next_fit_adversarial_items` — items alternating ``1/2 + ε`` and
  ``ε`` sizes that drive NextFit-style packers towards their worst ratio.
* :func:`sawtooth_instance` — interleaved tiny/huge requirements with large
  sizes; stresses the window's MoveWindowRight logic (ablation E7).
"""

from __future__ import annotations

import random
from fractions import Fraction
from typing import List, Tuple

from ..core.instance import Instance
from ..binpacking.item import Item, make_items


def three_partition_instance(
    rng: random.Random, q: int, base: int = 60
) -> Tuple[Instance, int]:
    """Planted-YES 3-Partition instance as unit-size SRJ with ``m = 3``.

    Each of the *q* triples ``(a, b, c)`` satisfies ``a + b + c = base`` and
    ``base/4 < a,b,c < base/2``.  Jobs get requirements ``a_i / base``;
    the planted packing finishes three jobs per step using the whole
    resource, so the optimal makespan is exactly *q*.

    Returns ``(instance, q)``.
    """
    if q < 1:
        raise ValueError("q must be >= 1")
    if base % 4 != 0:
        raise ValueError("base must be divisible by 4 for clean bounds")
    lo, hi = base // 4 + 1, base // 2 - 1
    values: List[int] = []
    for _ in range(q):
        # draw a,b in the open range so that c = base - a - b also fits
        while True:
            a = rng.randint(lo, hi)
            b = rng.randint(lo, hi)
            c = base - a - b
            if lo <= c <= hi:
                break
        values.extend([a, b, c])
    reqs = [Fraction(v, base) for v in values]
    return Instance.from_requirements(3, reqs), q


def next_fit_adversarial_items(
    n_bigs: int, k: int = 2, epsilon: Fraction = Fraction(1, 100)
) -> List[Item]:
    """The ``2 - 1/k`` family for NextFit-style packers.

    ``n_bigs`` items of size ``1 - (k-1)·ε`` followed by ``n_bigs·(k-1)``
    slivers of size ``ε``.  The optimum pairs one big item with ``k-1``
    slivers per bin (``OPT = n_bigs``).  NextFit, processing in input
    order, fills ~``n_bigs`` bins with big items alone and then needs
    ``n_bigs·(k-1)/k`` cardinality-closed bins of slivers — ratio
    ``≈ 2 - 1/k``.  The sliding-window packer sorts by size and its window
    naturally recreates the optimal (k-1 slivers + one big) pairing.
    """
    if n_bigs < 1:
        raise ValueError("n_bigs must be >= 1")
    if k < 2:
        raise ValueError("k must be >= 2")
    if epsilon <= 0 or (k - 1) * epsilon >= Fraction(1, 2):
        raise ValueError("epsilon too large for the construction")
    sizes: List[Fraction] = [Fraction(1) - (k - 1) * epsilon] * n_bigs
    sizes.extend([epsilon] * (n_bigs * (k - 1)))
    return make_items(sizes)


def sawtooth_instance(
    rng: random.Random, m: int, teeth: int, size: int = 8
) -> Instance:
    """Interleaved tiny and huge requirements with uniform large sizes.

    The canonical ordering separates the scales; a naive greedy window
    (MoveWindowRight disabled) parks on the tiny jobs and wastes resource,
    while the maximal window slides right to keep utilization high.
    """
    reqs: List[Fraction] = []
    sizes: List[int] = []
    for i in range(teeth):
        reqs.append(Fraction(1, 100 + rng.randint(0, 20)))
        sizes.append(size)
        reqs.append(Fraction(90 + rng.randint(0, 20), 100))
        sizes.append(max(size // 2, 1))
    return Instance.from_requirements(m, reqs, sizes)


def resource_cliff_instance(m: int, big_steps: int) -> Instance:
    """Deterministic family: ``m - 2`` processor-bound slivers plus a chain
    of resource-bound unit jobs.  Exercises the Case-1 / Case-2 boundary of
    the assignment (the ``T_L`` vs ``T_R`` accounting of Theorem 3.3)."""
    if m < 3:
        raise ValueError("m must be >= 3")
    reqs: List[Fraction] = []
    sizes: List[int] = []
    for _ in range(m - 2):
        reqs.append(Fraction(1, 1000))
        sizes.append(big_steps)
    for _ in range(big_steps):
        reqs.append(Fraction(1))
        sizes.append(1)
    return Instance.from_requirements(m, reqs, sizes)
