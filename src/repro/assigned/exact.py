"""Exact makespan for the fixed-assignment model via MILP (HiGHS).

Counterpart of :mod:`repro.exact.milp` for the Brinkmann-et-al. substrate:
per-processor one-job-at-a-time binaries plus precedence ("the queue
predecessor must be fully served before you receive anything") replace the
free model's contiguity constraints.
"""

from __future__ import annotations

from fractions import Fraction
from typing import List, Optional, Tuple

import numpy as np
from scipy.optimize import Bounds, LinearConstraint, milp
from scipy.sparse import lil_matrix, vstack

from ..exact.milp import ExactSolverError
from .model import AssignedInstance, assigned_lower_bound
from .scheduler import schedule_assigned

_EPS = 1e-7


def assigned_feasible_in(instance: AssignedInstance, horizon: int) -> bool:
    """Can the fixed-assignment instance finish within *horizon* steps?"""
    jobs = instance.jobs()
    n, T = len(jobs), horizon
    if n == 0:
        return True
    if T <= 0:
        return False
    index = {job.key: j for j, job in enumerate(jobs)}
    nx = n * T
    nv = 2 * nx  # x then z

    def xi(j: int, t: int) -> int:
        return j * T + t

    def zi(j: int, t: int) -> int:
        return nx + j * T + t

    rows: List[lil_matrix] = []
    lbs: List[float] = []
    ubs: List[float] = []

    def add_row(cols, vals, lo, hi):
        row = lil_matrix((1, nv))
        for c, v in zip(cols, vals):
            row[0, c] = v
        rows.append(row)
        lbs.append(lo)
        ubs.append(hi)

    caps = [float(min(job.requirement, 1)) for job in jobs]
    # x <= cap * z
    for j in range(n):
        for t in range(T):
            add_row([xi(j, t), zi(j, t)], [1.0, -caps[j]], -np.inf, 0.0)
    # coverage
    for j, job in enumerate(jobs):
        add_row(
            [xi(j, t) for t in range(T)],
            [1.0] * T,
            float(job.total_requirement) - _EPS,
            np.inf,
        )
    # shared resource
    for t in range(T):
        add_row([xi(j, t) for j in range(n)], [1.0] * n, -np.inf, 1.0 + _EPS)
    # one job per processor per step
    for i, queue in enumerate(instance.queues):
        if not queue:
            continue
        for t in range(T):
            add_row(
                [zi(index[job.key], t) for job in queue],
                [1.0] * len(queue),
                -np.inf,
                1.0,
            )
    # precedence: s_k * z_{k+1,t} <= sum_{t'<t} x_{k,t'}
    for queue in instance.queues:
        for k in range(len(queue) - 1):
            pred = index[queue[k].key]
            succ = index[queue[k + 1].key]
            s_pred = float(queue[k].total_requirement)
            for t in range(T):
                cols = [zi(succ, t)] + [xi(pred, t2) for t2 in range(t)]
                vals = [s_pred] + [-1.0] * t
                add_row(cols, vals, -np.inf, _EPS)

    a = vstack([r.tocsr() for r in rows], format="csr")
    constraint = LinearConstraint(a, np.array(lbs), np.array(ubs))
    integrality = np.concatenate([np.zeros(nx), np.ones(nx)])
    bounds = Bounds(
        lb=np.zeros(nv),
        ub=np.concatenate([np.array(caps).repeat(T), np.ones(nx)]),
    )
    res = milp(
        c=np.zeros(nv),
        constraints=constraint,
        integrality=integrality,
        bounds=bounds,
    )
    if res.status == 4:
        raise ExactSolverError(f"HiGHS failure: {res.message}")
    return bool(res.success)


def solve_assigned_exact(
    instance: AssignedInstance,
    upper_bound: Optional[int] = None,
    max_horizon: int = 30,
) -> Tuple[int, int]:
    """Optimal fixed-assignment makespan; returns ``(opt, lower_bound)``."""
    lb = assigned_lower_bound(instance)
    if instance.n == 0:
        return 0, 0
    if upper_bound is None:
        upper_bound = schedule_assigned(instance).makespan
    if upper_bound > max_horizon:
        raise ExactSolverError(
            f"upper bound {upper_bound} exceeds max_horizon={max_horizon}"
        )
    for T in range(lb, upper_bound + 1):
        if assigned_feasible_in(instance, T):
            return T, lb
    raise ExactSolverError(
        f"no feasible horizon in [{lb}, {upper_bound}]"
    )
