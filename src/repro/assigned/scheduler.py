"""Resource-distribution schedulers for the fixed-assignment model.

With assignments and orders fixed, a schedule is just a per-step division
of the resource among the ``m`` head-of-queue jobs.  We implement the
natural combinatorial policies in the spirit of Brinkmann et al. [3]
(their balanced greedy achieves ``2 - 1/m`` for equal-size jobs):

* ``smallest_first`` — serve heads in increasing requirement order, each up
  to ``min(r_j, remaining)``, until the budget runs out.  Maximizes the
  number of fully-served heads per step.
* ``largest_first`` — the opposite; maximizes immediate resource drain.
* ``proportional`` — split the budget proportionally to the heads' current
  requirements (capped at ``r_j``), a fluid-fair policy.

All policies are work-conserving: leftover budget cascades to unsaturated
heads, so a step never idles resource that some head could absorb.

The step loop lives in :mod:`repro.engine`
(:class:`~repro.engine.policies.AssignedQueuePolicy`).  ``proportional``
uses true division and therefore always runs on the exact-rational
backend; the other policies honor ``backend`` (``"auto"``/``"int"`` is the
scaled-integer fast path, bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Tuple

from ..engine import api as _engine
from ..numeric import frac_sum
from .model import AssignedInstance

JobKey = Tuple[int, int]


@dataclass
class AssignedResult:
    """Outcome of a fixed-assignment run."""

    makespan: int
    completion_times: Dict[JobKey, int]
    #: per-step resource utilization
    utilization: List[Fraction] = field(default_factory=list)
    #: metrics accumulated by ``collect_stats=True`` (else ``None``)
    stats: object = field(default=None, repr=False, compare=False)

    def total_waste(self) -> Fraction:
        return frac_sum(Fraction(1) - u for u in self.utilization)


POLICIES = ("smallest_first", "largest_first", "proportional")


def schedule_assigned(
    instance: AssignedInstance,
    policy: str = "smallest_first",
    budget: Fraction = Fraction(1),
    max_steps: int = 10_000_000,
    backend: str = "auto",
    observer=None,
    collect_stats: bool = False,
) -> AssignedResult:
    """Run the chosen per-step policy to completion.

    ``observer=`` / ``collect_stats=`` install telemetry (see
    :mod:`repro.obs`); ``collect_stats=True`` attaches the metrics
    registry as ``result.stats``.
    """
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; have {POLICIES}")
    if budget <= 0:
        raise ValueError("budget must be positive")
    from ..obs import setup_observer

    obs, metrics = setup_observer(observer, collect_stats, env=False)
    makespan, completion, utilization = _engine.run_assigned(
        instance, policy, budget, max_steps=max_steps, backend=backend,
        observer=obs,
    )
    return AssignedResult(
        makespan=makespan,
        completion_times=completion,
        utilization=utilization,
        stats=metrics,
    )
