"""Resource-distribution schedulers for the fixed-assignment model.

With assignments and orders fixed, a schedule is just a per-step division
of the resource among the ``m`` head-of-queue jobs.  We implement the
natural combinatorial policies in the spirit of Brinkmann et al. [3]
(their balanced greedy achieves ``2 - 1/m`` for equal-size jobs):

* ``smallest_first`` — serve heads in increasing requirement order, each up
  to ``min(r_j, remaining)``, until the budget runs out.  Maximizes the
  number of fully-served heads per step.
* ``largest_first`` — the opposite; maximizes immediate resource drain.
* ``proportional`` — split the budget proportionally to the heads' current
  requirements (capped at ``r_j``), a fluid-fair policy.

All policies are work-conserving: leftover budget cascades to unsaturated
heads, so a step never idles resource that some head could absorb.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Tuple

from ..numeric import frac_sum
from .model import AssignedInstance

JobKey = Tuple[int, int]


@dataclass
class AssignedResult:
    """Outcome of a fixed-assignment run."""

    makespan: int
    completion_times: Dict[JobKey, int]
    #: per-step resource utilization
    utilization: List[Fraction] = field(default_factory=list)

    def total_waste(self) -> Fraction:
        return frac_sum(Fraction(1) - u for u in self.utilization)


POLICIES = ("smallest_first", "largest_first", "proportional")


def schedule_assigned(
    instance: AssignedInstance,
    policy: str = "smallest_first",
    budget: Fraction = Fraction(1),
    max_steps: int = 10_000_000,
) -> AssignedResult:
    """Run the chosen per-step policy to completion."""
    if policy not in POLICIES:
        raise ValueError(f"unknown policy {policy!r}; have {POLICIES}")
    if budget <= 0:
        raise ValueError("budget must be positive")
    # per processor: index of current head; remaining s of each job
    heads = [0] * instance.m
    remaining: Dict[JobKey, Fraction] = {
        job.key: job.total_requirement for job in instance.jobs()
    }
    completion: Dict[JobKey, int] = {}
    utilization: List[Fraction] = []
    t = 0
    while any(heads[i] < len(q) for i, q in enumerate(instance.queues)):
        t += 1
        if t > max_steps:
            raise RuntimeError("assigned scheduler exceeded max_steps")
        current = [
            instance.queues[i][heads[i]]
            for i in range(instance.m)
            if heads[i] < len(instance.queues[i])
        ]
        shares = _distribute(current, remaining, budget, policy)
        used = Fraction(0)
        for job in current:
            share = shares.get(job.key, Fraction(0))
            if share <= 0:
                continue
            used += share
            remaining[job.key] -= share
            if remaining[job.key] <= 0:
                completion[job.key] = t
                heads[job.processor] += 1
        utilization.append(used)
        if used <= 0:
            raise RuntimeError("assigned scheduler made no progress")
    return AssignedResult(
        makespan=t, completion_times=completion, utilization=utilization
    )


def _distribute(current, remaining, budget, policy) -> Dict[JobKey, Fraction]:
    caps = {
        job.key: min(job.requirement, remaining[job.key]) for job in current
    }
    if policy == "proportional":
        total_req = frac_sum(job.requirement for job in current)
        shares: Dict[JobKey, Fraction] = {}
        left = budget
        # proportional seed, capped; then cascade the slack smallest-first
        for job in current:
            seed = min(budget * job.requirement / total_req, caps[job.key])
            shares[job.key] = seed
            left -= seed
        if left > 0:
            for job in sorted(current, key=lambda j: (j.requirement, j.key)):
                room = caps[job.key] - shares[job.key]
                if room <= 0:
                    continue
                extra = min(room, left)
                shares[job.key] += extra
                left -= extra
                if left <= 0:
                    break
        return shares
    reverse = policy == "largest_first"
    ordered = sorted(
        current, key=lambda j: (j.requirement, j.key), reverse=reverse
    )
    shares = {}
    left = budget
    for job in ordered:
        share = min(caps[job.key], left)
        if share > 0:
            shares[job.key] = share
            left -= share
        if left <= 0:
            break
    return shares
