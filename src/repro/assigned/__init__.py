"""Fixed-assignment substrate (Brinkmann et al., SPAA 2014 — ref [3]).

The predecessor model: jobs pinned to processor queues, scheduler only
splits the resource.  Experiment E10 quantifies what the SPAA-2017 paper
gains by also choosing the assignment.
"""

from .model import (
    AssignedInstance,
    AssignedJob,
    assigned_lower_bound,
)
from .exact import assigned_feasible_in, solve_assigned_exact
from .scheduler import (
    POLICIES,
    AssignedResult,
    schedule_assigned,
)

__all__ = [
    "AssignedInstance",
    "AssignedJob",
    "assigned_lower_bound",
    "schedule_assigned",
    "AssignedResult",
    "POLICIES",
    "solve_assigned_exact",
    "assigned_feasible_in",
]
