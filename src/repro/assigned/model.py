"""The fixed-assignment model of Brinkmann et al. (SPAA 2014) — the paper's
direct predecessor ([3] in its bibliography, Section 1.2).

There, jobs are *already assigned* to processors and the per-processor
execution order is fixed; the scheduler only distributes the shared resource
among the ``m`` current head-of-queue jobs in each step.  The SPAA-2017
paper removes the fixed-assignment restriction — its central open problem —
so this substrate is what experiment E10 compares against to quantify the
*value of assignment freedom*.

The original work assumes jobs of equal computational size; we keep general
sizes (the resource-accumulation view ``s_j = p_j · r_j`` works verbatim).
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import List, Sequence, Tuple

from ..core.instance import Instance
from ..numeric import Number, ceil_div, ceil_frac, frac_sum, to_fraction


@dataclass(frozen=True)
class AssignedJob:
    """A job pinned to a processor queue position."""

    processor: int
    position: int
    size: int
    requirement: Fraction

    def __post_init__(self) -> None:
        if self.size < 1:
            raise ValueError("size must be >= 1")
        req = to_fraction(self.requirement)
        if req <= 0:
            raise ValueError("requirement must be positive")
        object.__setattr__(self, "requirement", req)

    @property
    def total_requirement(self) -> Fraction:
        return self.size * self.requirement

    @property
    def key(self) -> Tuple[int, int]:
        return (self.processor, self.position)


@dataclass(frozen=True)
class AssignedInstance:
    """``m`` processor queues of jobs with a fixed order."""

    m: int
    queues: tuple  # tuple of tuples of AssignedJob

    def __post_init__(self) -> None:
        if self.m < 1:
            raise ValueError("m must be >= 1")
        if len(self.queues) != self.m:
            raise ValueError("need exactly one queue per processor")
        for i, queue in enumerate(self.queues):
            for k, job in enumerate(queue):
                if job.processor != i or job.position != k:
                    raise ValueError(
                        f"job at queue {i} position {k} is mislabelled "
                        f"({job.processor}, {job.position})"
                    )

    @classmethod
    def create(
        cls,
        queues: Sequence[Sequence[Tuple[int, Number]]],
    ) -> "AssignedInstance":
        """Build from per-processor lists of ``(size, requirement)``."""
        built = tuple(
            tuple(
                AssignedJob(
                    processor=i,
                    position=k,
                    size=int(size),
                    requirement=to_fraction(req),
                )
                for k, (size, req) in enumerate(queue)
            )
            for i, queue in enumerate(queues)
        )
        return cls(m=len(built), queues=built)

    @property
    def n(self) -> int:
        return sum(len(q) for q in self.queues)

    def jobs(self) -> List[AssignedJob]:
        return [job for queue in self.queues for job in queue]

    def total_work(self) -> Fraction:
        return frac_sum(job.total_requirement for job in self.jobs())

    def to_free_instance(self) -> Instance:
        """Forget the assignment: the same jobs as an SRJ instance (what
        the SPAA-2017 algorithm schedules)."""
        jobs = self.jobs()
        return Instance.from_requirements(
            self.m,
            [j.requirement for j in jobs],
            [j.size for j in jobs],
        )


def assigned_lower_bound(instance: AssignedInstance) -> int:
    """Lower bounds for the fixed-assignment problem:

    * resource: ``⌈Σ s_j⌉`` (as in Equation (1));
    * chain: each processor must run its queue sequentially, and job ``j``
      alone needs ``⌈s_j / min(r_j, 1)⌉`` steps, so
      ``max_i Σ_{j ∈ queue i} ⌈s_j / min(r_j, 1)⌉`` is a lower bound —
      this *chain bound* has no counterpart in the free-assignment model
      and is exactly why fixed assignments can be much worse.
    """
    if instance.n == 0:
        return 0
    resource = ceil_frac(instance.total_work())
    chain = max(
        sum(
            ceil_div(job.total_requirement, min(job.requirement, Fraction(1)))
            for job in queue
        )
        for queue in instance.queues
    )
    return max(resource, chain)
