"""The fault-tolerant SRJ runner: segmented execution + recovery.

``run_with_faults`` executes an SRJ instance under a :class:`FaultPlan`
by partitioning the timeline at fault-event boundaries.  Between two
boundaries the machine condition (online processors, capacity) is
constant, so the paper's sliding-window scheduler applies verbatim to the
*residual* sub-instance: each surviving job ``j`` with residual volume
``v_j = s_j − (resource delivered so far)`` re-enters as a job with
requirement ``r_j`` and real-valued size ``v_j / r_j``, rescaled by the
paper's real-size transformation (:meth:`Instance.from_real_sizes`,
below Equation (1)).  This *is* the recovery algorithm of the issue:
re-invoking the sliding-window scheduler on residual volumes.  All
arithmetic is exact (Fractions / LCM-scaled integers), so the produced
schedule, completion times and the degradation ratio are identical
across backends and run counts.

Guarantees (see docs/ROBUSTNESS.md):

* every non-aborted job completes, and the assembled schedule satisfies
  the per-step model rules of the *degraded* machine (capacity at most
  the dipped ``R_total(t)``, concurrency at most the online processor
  count) — checked by :func:`validate_faulted`;
* within a segment the paper's 2+1/(m−2) window guarantees hold for the
  residual sub-instance; **no end-to-end approximation factor** is
  claimed across fault boundaries (crashes can force processor
  migration, which the fault-free model forbids).

``recover`` is the single-shot form: given a :class:`Checkpoint` it
builds the residual sub-instance, schedules it fault-free and returns a
tail whose schedule passes ``validate_schedule``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.instance import Instance
from ..core.validate import ValidationReport
from ..engine.api import solve_srj
from ..engine.trace import SRJResult, TraceRun
from ..numeric import frac_sum
from ..obs import setup_observer
from .model import FaultEvent, FaultPlan
from .snapshot import Checkpoint

__all__ = [
    "FaultRecoveryError",
    "FaultSegment",
    "FaultedResult",
    "RecoveryResult",
    "run_with_faults",
    "recover",
    "validate_faulted",
    "degradation_report",
    "injection_schedule",
    "INJECTION_KINDS",
]


class FaultRecoveryError(RuntimeError):
    """The plan leaves the machine unable to finish (e.g. every
    processor down with no restore event pending)."""


@dataclass
class FaultSegment:
    """One maximal run under a constant machine condition.

    ``runs`` is the segment's RLE trace with *original* job ids and
    *physical* processor indices; an idle segment (no online processor or
    zero capacity) has no runs.
    """

    start: int
    length: int
    capacity: Fraction
    processors: Tuple[int, ...]
    runs: List[TraceRun] = field(default_factory=list)


@dataclass
class FaultedResult:
    """Outcome of :func:`run_with_faults`."""

    instance: Instance
    plan: FaultPlan
    backend: str
    makespan: int
    #: original job id -> completion step (aborted jobs absent)
    completion_times: Dict[int, int]
    #: original job id -> step the abort took effect
    aborted: Dict[int, int]
    segments: List[FaultSegment]
    checkpoints: List[Checkpoint]
    #: (event, applied?) in firing order; an event is skipped (False) when
    #: it is a no-op in context (crash of a down/out-of-range processor,
    #: restore of an up one, abort of a finished job)
    applied: List[Tuple[FaultEvent, bool]]
    #: makespan of the same instance without faults (None if not computed)
    fault_free_makespan: Optional[int] = None
    #: metrics accumulated by ``collect_stats=True`` (else ``None``)
    stats: object = field(default=None, repr=False, compare=False)

    @property
    def degradation(self) -> Optional[Fraction]:
        """Achieved-vs-fault-free makespan ratio (≥ 1 in practice)."""
        if self.fault_free_makespan is None or self.fault_free_makespan == 0:
            return None
        return Fraction(self.makespan, self.fault_free_makespan)

    def n_applied(self) -> int:
        return sum(1 for _ev, ok in self.applied if ok)


@dataclass
class RecoveryResult:
    """Outcome of :func:`recover`: the rescheduled tail."""

    #: the residual sub-instance (canonical ids)
    sub_instance: Instance
    #: canonical sub-instance id -> original job id
    job_ids: Dict[int, int]
    #: the fault-free schedule of the residual volumes
    result: SRJResult
    #: wall-clock step the tail starts at
    start: int

    @property
    def completion_times(self) -> Dict[int, int]:
        """Original job id -> absolute completion step."""
        return {
            self.job_ids[cid]: self.start + ct
            for cid, ct in self.result.completion_times.items()
        }

    @property
    def makespan(self) -> int:
        return self.start + self.result.makespan


# ---------------------------------------------------------------------------
# Residual sub-instances
# ---------------------------------------------------------------------------


def _residual_instance(
    instance: Instance, residual: Dict[int, Fraction], m_eff: int
) -> Tuple[Instance, Dict[int, int]]:
    """Build the sub-instance of jobs with residual volume > 0.

    Returns ``(sub, keymap)`` where ``keymap`` maps the sub-instance's
    canonical job ids back to original job ids.  Residual volumes re-enter
    through the paper's real-size rescaling: requirement ``r_j`` is kept,
    the real size is ``v_j / r_j``, so ``s'_j = v_j`` exactly.
    """
    keys = sorted(j for j, v in residual.items() if v > 0)
    reqs = [instance.requirement(j) for j in keys]
    sizes = [residual[j] / instance.requirement(j) for j in keys]
    sub = Instance.from_real_sizes(m_eff, reqs, sizes)
    keymap = {
        cid: keys[pos] for cid, pos in enumerate(sub.original_ids)
    }
    return sub, keymap


def _apply_event(
    ev: FaultEvent,
    m: int,
    down: Set[int],
    capacity: List[Fraction],
    residual: Dict[int, Fraction],
    aborted: Dict[int, int],
    t: int,
) -> bool:
    """Mutate the machine condition for one event; True iff it took effect."""
    if ev.kind == "crash":
        if ev.processor >= m or ev.processor in down:
            return False
        down.add(ev.processor)
        return True
    if ev.kind == "restore":
        if ev.processor not in down:
            return False
        down.discard(ev.processor)
        return True
    if ev.kind == "dip":
        if capacity[0] == ev.capacity:
            return False
        capacity[0] = ev.capacity
        return True
    # abort
    if ev.job not in residual or residual[ev.job] <= 0:
        return False
    residual[ev.job] = Fraction(0)
    aborted[ev.job] = t
    return True


# ---------------------------------------------------------------------------
# The segmented runner
# ---------------------------------------------------------------------------


def run_with_faults(
    instance: Instance,
    plan: FaultPlan,
    backend: str = "auto",
    observer=None,
    collect_stats: bool = False,
    compare_fault_free: bool = True,
    checkpoint_every: Optional[int] = None,
    from_checkpoint: Optional[Checkpoint] = None,
    max_segments: int = 100_000,
) -> FaultedResult:
    """Execute *instance* under *plan*, recovering after every fault.

    With an empty plan (and no ``checkpoint_every``) the result equals
    ``solve_srj(instance, backend)`` run for run.  ``checkpoint_every``
    additionally cuts segments at multiples of that step count so a
    :class:`Checkpoint` lands there; note this resets the sliding window
    at the cut, which may alter the schedule *shape* (it stays valid and
    deterministic).  ``from_checkpoint`` resumes a previous run — the
    produced tail is identical to the straight-through run's tail.

    *observer* / ``collect_stats`` install telemetry; fault events reach
    observers through ``on_fault`` and the per-segment engine runs emit
    the usual run records.
    """
    if checkpoint_every is not None and checkpoint_every < 1:
        raise ValueError("checkpoint_every must be >= 1")
    obs, metrics = setup_observer(observer, collect_stats, env=False)
    events = plan.events
    if from_checkpoint is None:
        t = 0
        residual = {
            job.id: job.total_requirement for job in instance.jobs
        }
        completed: Dict[int, int] = {}
        aborted: Dict[int, int] = {}
        down: Set[int] = set()
        capacity = [Fraction(1)]
        next_event = 0
    else:
        cp = from_checkpoint
        t = cp.t
        residual = dict(cp.residual)
        completed = dict(cp.completed)
        aborted = dict(cp.aborted)
        down = set(cp.down)
        capacity = [Fraction(cp.capacity)]
        next_event = cp.next_event

    segments: List[FaultSegment] = []
    checkpoints: List[Checkpoint] = []
    applied: List[Tuple[FaultEvent, bool]] = []

    while True:
        while next_event < len(events) and events[next_event].t <= t:
            ev = events[next_event]
            next_event += 1
            ok = _apply_event(
                ev, instance.m, down, capacity, residual, aborted, t
            )
            applied.append((ev, ok))
            if obs is not None:
                obs.on_fault(ev, {"t": t, "applied": ok, "layer": "faults"})
        if not any(v > 0 for v in residual.values()):
            break
        if len(segments) >= max_segments:
            raise FaultRecoveryError(
                f"fault runner exceeded {max_segments} segments"
            )
        horizon: Optional[int] = (
            events[next_event].t if next_event < len(events) else None
        )
        if checkpoint_every is not None:
            next_cp = (t // checkpoint_every + 1) * checkpoint_every
            horizon = next_cp if horizon is None else min(horizon, next_cp)
        m_eff = instance.m - len(down)
        stalled = m_eff <= 0 or capacity[0] <= 0
        if stalled:
            if next_event >= len(events):
                raise FaultRecoveryError(
                    "machine stalled (no online processor or zero capacity)"
                    " with no restoring event left in the plan"
                )
            # idle until the next event can change the condition
            idle_to = events[next_event].t
            if checkpoint_every is not None:
                next_cp = (t // checkpoint_every + 1) * checkpoint_every
                idle_to = min(idle_to, next_cp)
            segments.append(
                FaultSegment(
                    start=t,
                    length=idle_to - t,
                    capacity=capacity[0],
                    processors=tuple(
                        p for p in range(instance.m) if p not in down
                    ),
                )
            )
            t = idle_to
        else:
            sub, keymap = _residual_instance(instance, residual, m_eff)
            step_limit = None if horizon is None else horizon - t
            res = solve_srj(
                sub,
                backend=backend,
                observer=obs,
                budget=capacity[0],
                step_limit=step_limit,
            )
            up = tuple(p for p in range(instance.m) if p not in down)
            runs = [
                TraceRun(
                    shares={
                        keymap[cid]: share
                        for cid, share in run.shares.items()
                    },
                    processors={
                        keymap[cid]: up[proc]
                        for cid, proc in run.processors.items()
                    },
                    count=run.count,
                    case=run.case,
                    window=[keymap[cid] for cid in run.window],
                )
                for run in res.trace
            ]
            delivered: Dict[int, Fraction] = {}
            for run in res.trace:
                for cid, share in run.shares.items():
                    oj = keymap[cid]
                    delivered[oj] = (
                        delivered.get(oj, Fraction(0)) + share * run.count
                    )
            for oj, vol in delivered.items():
                rem = residual[oj] - vol
                if rem < 0:
                    raise AssertionError(
                        f"segment over-delivered {vol - residual[oj]} "
                        f"to job {oj}"
                    )
                residual[oj] = rem
            for cid, ct in res.completion_times.items():
                completed[keymap[cid]] = t + ct
            segments.append(
                FaultSegment(
                    start=t,
                    length=res.makespan,
                    capacity=capacity[0],
                    processors=up,
                    runs=runs,
                )
            )
            t += res.makespan
        checkpoints.append(
            Checkpoint(
                t=t,
                residual={j: v for j, v in residual.items() if v > 0},
                completed=dict(completed),
                aborted=dict(aborted),
                down=tuple(sorted(down)),
                capacity=capacity[0],
                next_event=next_event,
            )
        )

    fault_free = None
    if compare_fault_free:
        fault_free = solve_srj(instance, backend=backend).makespan
    return FaultedResult(
        instance=instance,
        plan=plan,
        backend=backend,
        makespan=t,
        completion_times=completed,
        aborted=aborted,
        segments=segments,
        checkpoints=checkpoints,
        applied=applied,
        fault_free_makespan=fault_free,
        stats=metrics,
    )


# ---------------------------------------------------------------------------
# Single-shot recovery
# ---------------------------------------------------------------------------


def recover(
    instance: Instance,
    checkpoint: Checkpoint,
    backend: str = "auto",
    observer=None,
) -> RecoveryResult:
    """Reschedule the residual volumes of *checkpoint* fault-free.

    Re-invokes the sliding-window scheduler on ``v_j = s_j − delivered``
    over the full machine at unit capacity; the returned tail's schedule
    passes ``validate_schedule`` (tested).  Use this to resume after the
    fault regime has passed.
    """
    if not checkpoint.residual:
        raise FaultRecoveryError("checkpoint has no residual work to recover")
    sub, keymap = _residual_instance(
        instance, dict(checkpoint.residual), instance.m
    )
    result = solve_srj(sub, backend=backend, observer=observer)
    return RecoveryResult(
        sub_instance=sub,
        job_ids=keymap,
        result=result,
        start=checkpoint.t,
    )


# ---------------------------------------------------------------------------
# Validation & reporting
# ---------------------------------------------------------------------------


def validate_faulted(result: FaultedResult) -> ValidationReport:
    """Audit a :class:`FaultedResult` against the degraded model rules.

    Checks, per segment run: exact capacity compliance, concurrency at
    most the online processor count, distinct online processors, shares
    within ``[0, r_j]``; across segments: contiguous coverage of
    ``[0, makespan)``, total delivery ``s_j`` for every non-aborted job
    (at most ``s_j`` for aborted ones), and completion times consistent
    with the trace.  Works on the RLE runs directly, so cost is
    O(runs · jobs-per-run), independent of the makespan.
    """
    inst = result.instance
    violations: List[str] = []
    delivered: Dict[int, Fraction] = {
        job.id: Fraction(0) for job in inst.jobs
    }
    cursor = 0
    for si, seg in enumerate(result.segments):
        if seg.start != cursor:
            violations.append(
                f"segment {si} starts at {seg.start}, expected {cursor}"
            )
        if seg.length < 0:
            violations.append(f"segment {si} has negative length")
        cursor = seg.start + seg.length
        online = set(seg.processors)
        run_steps = sum(run.count for run in seg.runs)
        if seg.runs and run_steps != seg.length:
            violations.append(
                f"segment {si} covers {run_steps} steps, length {seg.length}"
            )
        for ri, run in enumerate(seg.runs):
            total = frac_sum(run.shares.values())
            if total > seg.capacity:
                violations.append(
                    f"segment {si} run {ri}: resource overuse "
                    f"{total} > {seg.capacity}"
                )
            if len(run.shares) > len(online):
                violations.append(
                    f"segment {si} run {ri}: {len(run.shares)} concurrent "
                    f"jobs on {len(online)} online processors"
                )
            procs = [run.processors.get(j) for j in run.shares]
            if len(set(procs)) != len(procs):
                violations.append(
                    f"segment {si} run {ri}: duplicate processor assignment"
                )
            for j, share in run.shares.items():
                if share < 0:
                    violations.append(
                        f"segment {si} run {ri}: negative share for job {j}"
                    )
                if share > inst.requirement(j):
                    violations.append(
                        f"segment {si} run {ri}: job {j} share {share} "
                        f"exceeds requirement {inst.requirement(j)}"
                    )
                if run.processors.get(j) not in online:
                    violations.append(
                        f"segment {si} run {ri}: job {j} on offline "
                        f"processor {run.processors.get(j)}"
                    )
                delivered[j] = delivered[j] + share * run.count
    if cursor != result.makespan:
        violations.append(
            f"segments cover [0, {cursor}), makespan is {result.makespan}"
        )
    for job in inst.jobs:
        need = job.total_requirement
        got = delivered[job.id]
        if job.id in result.aborted:
            if got > need:
                violations.append(
                    f"aborted job {job.id} over-delivered: {got} > {need}"
                )
            continue
        if got != need:
            violations.append(
                f"job {job.id} delivered {got}, needs {need}"
            )
        if job.id not in result.completion_times:
            violations.append(f"job {job.id} has no completion time")
    return ValidationReport(
        ok=not violations,
        violations=violations,
        makespan=result.makespan,
    )


#: process-level fault vocabulary :func:`injection_schedule` emits —
#: consumers (the service smoke battery) map these onto their own
#: failure surface
INJECTION_KINDS = ("worker_crash", "slow", "malformed", "recover")


def injection_schedule(plan: FaultPlan) -> List[Dict]:
    """Derive a process-level fault-injection schedule from *plan*.

    The model-level vocabulary (``crash``/``restore``/``dip``/``abort``)
    maps onto the failure surface of a *process* executing requests: a
    processor crash becomes a worker crash, a capacity dip becomes a slow
    (hanging) worker, an abort becomes a malformed request, and a restore
    becomes a plain recovery probe.  Because :meth:`FaultPlan.random` is
    a pure function of its seed, the whole schedule is too — the service
    smoke battery replays the same injections on every run.
    """
    mapping = {
        "crash": "worker_crash",
        "dip": "slow",
        "abort": "malformed",
        "restore": "recover",
    }
    return [
        {"t": ev.t, "kind": mapping[ev.kind], "source": ev.kind}
        for ev in plan.events
    ]


def degradation_report(result: FaultedResult) -> Dict:
    """A JSON-able summary of the degradation a plan caused."""
    ratio = result.degradation
    return {
        "makespan": result.makespan,
        "fault_free_makespan": result.fault_free_makespan,
        "degradation_exact": str(ratio) if ratio is not None else None,
        "degradation": (
            # reporting-only convenience; the exact ratio rides alongside
            # in degradation_exact
            float(ratio) if ratio is not None else None  # lint: ok-exact-no-float
        ),
        "events_planned": len(result.plan),
        "events_applied": result.n_applied(),
        "events_by_kind": result.plan.counts(),
        "jobs": result.instance.n,
        "jobs_aborted": len(result.aborted),
        "jobs_completed": len(result.completion_times),
        "segments": len(result.segments),
        "checkpoints": len(result.checkpoints),
    }
