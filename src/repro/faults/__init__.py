"""Fault tolerance: deterministic failure injection, checkpoint/recovery.

The subsystem (see docs/ROBUSTNESS.md for the full tour):

* :mod:`repro.faults.model` — :class:`FaultPlan` / :class:`FaultEvent`:
  seeded, deterministic plans of processor crashes/restores, resource
  capacity dips and job aborts, with an exact JSON round-trip;
* :mod:`repro.faults.snapshot` — :class:`StateSnapshot` (picklable exact
  engine-state snapshots) and :class:`Checkpoint` (the runner's durable
  segment-boundary record);
* :mod:`repro.faults.runner` — :func:`run_with_faults` (segmented
  execution of an SRJ instance under a plan, recovering by rescheduling
  residual volumes), :func:`recover` (single-shot recovery from a
  checkpoint), :func:`validate_faulted` and :func:`degradation_report`;
* :mod:`repro.faults.tasks` — :func:`run_tasks_with_faults`, the SRT
  (Section 4) counterpart.

Everything is exact and deterministic: the same seed and plan produce
bit-identical recovered schedules on the Fraction and int backends and
under any ``parallel_map`` worker count (tested).
"""

from .model import KINDS, FaultEvent, FaultPlan, FaultPlanError
from .runner import (
    INJECTION_KINDS,
    FaultedResult,
    FaultRecoveryError,
    FaultSegment,
    RecoveryResult,
    degradation_report,
    injection_schedule,
    recover,
    run_with_faults,
    validate_faulted,
)
from .snapshot import Checkpoint, StateSnapshot, restore_state, snapshot_state
from .tasks import FaultedTaskResult, run_tasks_with_faults

__all__ = [
    "KINDS",
    "FaultEvent",
    "FaultPlan",
    "FaultPlanError",
    "FaultRecoveryError",
    "FaultSegment",
    "FaultedResult",
    "FaultedTaskResult",
    "RecoveryResult",
    "Checkpoint",
    "StateSnapshot",
    "snapshot_state",
    "restore_state",
    "run_with_faults",
    "run_tasks_with_faults",
    "recover",
    "validate_faulted",
    "degradation_report",
    "injection_schedule",
    "INJECTION_KINDS",
]
