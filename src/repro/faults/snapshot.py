"""Exact, picklable snapshots of engine state and runner checkpoints.

Two snapshot granularities exist:

* :class:`StateSnapshot` — a point-in-time copy of an
  :class:`~repro.engine.state.EngineState` (equivalently a
  :class:`~repro.core.state.SchedulerState`) with every working-domain
  quantity converted to an exact :class:`~fractions.Fraction`.  It is a
  plain dataclass of dicts/ints — picklable as-is — and round-trips
  through JSON with the same ``"p/q"`` exact-fraction convention as the
  JSONL traces.  :meth:`StateSnapshot.restore` rebuilds a live state on
  any numeric backend; continuing a restored state reproduces the
  original run bit for bit (tested in ``tests/test_faults_snapshot.py``).

* :class:`Checkpoint` — the fault-tolerant runner's durable record at a
  segment boundary: wall-clock step, residual volumes
  ``v_j = s_j − (resource delivered so far)``, completions so far, the
  machine condition (down processors, current capacity) and the cursor
  into the fault plan.  ``run_with_faults(..., from_checkpoint=cp)``
  resumes from it and reproduces the straight-through run's tail exactly.

The trace (an emission artifact) and observer wiring are deliberately
*not* part of either snapshot; restoring starts a fresh trace.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, Optional, Tuple

from ..engine.backends.fraction import FractionContext
from ..engine.state import EngineState
from .model import FaultPlanError

__all__ = ["StateSnapshot", "Checkpoint", "snapshot_state", "restore_state"]


def _frac(value) -> Fraction:
    return Fraction(value)


@dataclass
class StateSnapshot:
    """Exact copy of an :class:`EngineState` at one point in time.

    Job keys are kept as the live Python objects (ints, or tuples for the
    SRT/assigned layers), so pickling is lossless.  The JSON form
    stringifies keys; :meth:`from_jsonable` parses them back with
    ``eval``-free literal parsing for ints and int-tuples (the two key
    shapes the engine uses).
    """

    m: int
    t: int
    requirements: Dict
    totals: Dict
    remaining: Dict
    processor_of: Dict
    completion_times: Dict
    steps_full_jobs: int = 0
    steps_full_resource: int = 0
    waste_units: Fraction = Fraction(0)

    # ------------------------------------------------------------------

    @classmethod
    def capture(cls, state: EngineState) -> "StateSnapshot":
        conv = state.ctx.to_fraction
        return cls(
            m=state.m,
            t=state.t,
            requirements={k: Fraction(conv(v)) for k, v in state.req.items()},
            totals={k: Fraction(conv(v)) for k, v in state.total.items()},
            remaining={
                k: Fraction(conv(v)) for k, v in state.remaining.items()
            },
            processor_of=dict(state.processor_of),
            completion_times=dict(state.completion_times),
            steps_full_jobs=state.steps_full_jobs,
            steps_full_resource=state.steps_full_resource,
            waste_units=Fraction(conv(state.waste_units)),
        )

    def restore(self, ctx=None) -> EngineState:
        """Rebuild a live :class:`EngineState` from this snapshot.

        *ctx* selects the numeric backend (default: a fresh exact
        :class:`FractionContext`).  A scaled-integer context is accepted
        as long as the snapshot's values lie on its ``1/D`` lattice —
        which holds whenever the context was built from the same budget
        and requirements.
        """
        if ctx is None:
            ctx = FractionContext()
        state = EngineState(
            self.m,
            ctx,
            {k: ctx.scale(v) for k, v in self.requirements.items()},
            {k: ctx.scale(v) for k, v in self.totals.items()},
            record_trace=True,
        )
        remaining = {k: ctx.scale(v) for k, v in self.remaining.items()}
        state.remaining = remaining
        state._unfinished = sorted(k for k, v in remaining.items() if v > 0)
        state.t = self.t
        state.completion_times = dict(self.completion_times)
        state.processor_of = {
            k: p
            for k, p in self.processor_of.items()
            if k in state.remaining
        }
        state._busy_processors = {
            p
            for k, p in state.processor_of.items()
            if remaining.get(k, 0) > 0
        }
        state.steps_full_jobs = self.steps_full_jobs
        state.steps_full_resource = self.steps_full_resource
        state.waste_units = ctx.scale(self.waste_units)
        return state

    # ------------------------------------------------------------------
    # Exact JSON round-trip
    # ------------------------------------------------------------------

    def to_jsonable(self) -> Dict:
        def fdict(d: Dict) -> Dict:
            return {_key_out(k): str(Fraction(v)) for k, v in d.items()}

        return {
            "schema": 1,
            "m": self.m,
            "t": self.t,
            "requirements": fdict(self.requirements),
            "totals": fdict(self.totals),
            "remaining": fdict(self.remaining),
            "processor_of": {
                _key_out(k): p for k, p in self.processor_of.items()
            },
            "completion_times": {
                _key_out(k): ct for k, ct in self.completion_times.items()
            },
            "steps_full_jobs": self.steps_full_jobs,
            "steps_full_resource": self.steps_full_resource,
            "waste_units": str(self.waste_units),
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "StateSnapshot":
        def pdict(d: Dict) -> Dict:
            return {_key_in(k): Fraction(v) for k, v in d.items()}

        return cls(
            m=data["m"],
            t=data["t"],
            requirements=pdict(data["requirements"]),
            totals=pdict(data["totals"]),
            remaining=pdict(data["remaining"]),
            processor_of={
                _key_in(k): p for k, p in data["processor_of"].items()
            },
            completion_times={
                _key_in(k): ct for k, ct in data["completion_times"].items()
            },
            steps_full_jobs=data.get("steps_full_jobs", 0),
            steps_full_resource=data.get("steps_full_resource", 0),
            waste_units=Fraction(data.get("waste_units", 0)),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "StateSnapshot":
        return cls.from_jsonable(json.loads(text))


def _key_out(key) -> str:
    """Serialize a job key: ``7`` -> ``"7"``, ``(2, 3)`` -> ``"2,3"``."""
    if isinstance(key, tuple):
        return ",".join(str(part) for part in key)
    return str(key)


def _key_in(text: str):
    """Inverse of :func:`_key_out` for int and int-tuple keys."""
    if "," in text:
        return tuple(int(part) for part in text.split(","))
    return int(text)


def snapshot_state(state: EngineState) -> StateSnapshot:
    """Convenience alias for :meth:`StateSnapshot.capture`."""
    return StateSnapshot.capture(state)


def restore_state(snapshot: StateSnapshot, ctx=None) -> EngineState:
    """Convenience alias for :meth:`StateSnapshot.restore`."""
    return snapshot.restore(ctx)


@dataclass
class Checkpoint:
    """The fault-tolerant runner's durable record at a segment boundary."""

    #: wall-clock step the checkpoint was taken at
    t: int
    #: original job id -> residual volume v_j > 0 (finished jobs absent)
    residual: Dict[int, Fraction] = field(default_factory=dict)
    #: original job id -> completion step, for jobs finished so far
    completed: Dict[int, int] = field(default_factory=dict)
    #: original job id -> abort step, for jobs cancelled so far
    aborted: Dict[int, int] = field(default_factory=dict)
    #: processors offline at the checkpoint
    down: Tuple[int, ...] = ()
    #: per-step resource capacity in effect
    capacity: Fraction = Fraction(1)
    #: index of the next unapplied event in the plan
    next_event: int = 0

    def to_jsonable(self) -> Dict:
        return {
            "schema": 1,
            "t": self.t,
            "residual": {str(j): str(Fraction(v)) for j, v in self.residual.items()},
            "completed": {str(j): ct for j, ct in self.completed.items()},
            "aborted": {str(j): ct for j, ct in self.aborted.items()},
            "down": list(self.down),
            "capacity": str(Fraction(self.capacity)),
            "next_event": self.next_event,
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "Checkpoint":
        if not isinstance(data, dict) or "t" not in data:
            raise FaultPlanError("checkpoint document must carry a 't' field")
        return cls(
            t=data["t"],
            residual={
                int(j): Fraction(v) for j, v in data.get("residual", {}).items()
            },
            completed={
                int(j): ct for j, ct in data.get("completed", {}).items()
            },
            aborted={int(j): ct for j, ct in data.get("aborted", {}).items()},
            down=tuple(data.get("down", ())),
            capacity=Fraction(data.get("capacity", 1)),
            next_event=data.get("next_event", 0),
        )

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "Checkpoint":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"malformed checkpoint JSON: {exc}") from exc
        return cls.from_jsonable(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "Checkpoint":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())
