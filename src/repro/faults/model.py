"""Deterministic fault plans: typed events, seeded generation, JSON I/O.

A :class:`FaultPlan` is an immutable, time-sorted list of
:class:`FaultEvent` records.  Four kinds exist, matching the degraded
regimes studied by the related work (Damerius–Kling–Schneider; Maack–
Pukrop–Rau):

* ``crash`` — processor ``p`` goes offline at the start of step ``t+1``;
* ``restore`` — processor ``p`` comes back online;
* ``dip`` — the per-step resource total drops to ``capacity``
  (``R_total(t) = capacity ≤ 1``; ``capacity = 1`` ends a dip, ``0``
  models a full resource outage);
* ``abort`` — job ``job`` is cancelled (its residual volume is dropped).

Everything is exact and reproducible: capacities are
:class:`~fractions.Fraction` values, :meth:`FaultPlan.random` derives the
whole plan from one integer seed via :class:`random.Random`, and the JSON
round-trip (:meth:`FaultPlan.to_json` / :meth:`FaultPlan.from_json`)
preserves capacities exactly as ``"p/q"`` strings — the same convention
as the JSONL traces.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, Iterable, List, Optional, Tuple

from ..numeric import to_fraction

__all__ = ["KINDS", "FaultPlanError", "FaultEvent", "FaultPlan"]

#: the supported event kinds
KINDS = ("crash", "restore", "dip", "abort")


class FaultPlanError(ValueError):
    """A malformed fault event or plan."""


@dataclass(frozen=True)
class FaultEvent:
    """One fault at (the start of) step ``t + 1``.

    Exactly one of the kind-specific fields is set: ``processor`` for
    ``crash``/``restore``, ``capacity`` for ``dip``, ``job`` for
    ``abort``.
    """

    t: int
    kind: str
    processor: Optional[int] = None
    capacity: Optional[Fraction] = None
    job: Optional[int] = None

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise FaultPlanError(
                f"unknown fault kind {self.kind!r}; choose from {KINDS}"
            )
        if not isinstance(self.t, int) or self.t < 0:
            raise FaultPlanError(f"event time must be an int >= 0, got {self.t!r}")
        if self.kind in ("crash", "restore"):
            if not isinstance(self.processor, int) or self.processor < 0:
                raise FaultPlanError(
                    f"{self.kind} event needs a processor index >= 0"
                )
            if self.capacity is not None or self.job is not None:
                raise FaultPlanError(
                    f"{self.kind} event takes only a processor"
                )
        elif self.kind == "dip":
            if self.capacity is None:
                raise FaultPlanError("dip event needs a capacity")
            try:
                # accept "p/q" strings (the JSON convention) alongside
                # the numeric types to_fraction handles
                cap = (
                    Fraction(self.capacity)
                    if isinstance(self.capacity, str)
                    else to_fraction(self.capacity)
                )
            except (ValueError, ZeroDivisionError) as exc:
                raise FaultPlanError(
                    f"bad dip capacity {self.capacity!r}: {exc}"
                ) from exc
            if cap < 0 or cap > 1:
                raise FaultPlanError(
                    f"dip capacity must lie in [0, 1], got {cap}"
                )
            object.__setattr__(self, "capacity", cap)
            if self.processor is not None or self.job is not None:
                raise FaultPlanError("dip event takes only a capacity")
        else:  # abort
            if not isinstance(self.job, int) or self.job < 0:
                raise FaultPlanError("abort event needs a job id >= 0")
            if self.processor is not None or self.capacity is not None:
                raise FaultPlanError("abort event takes only a job id")

    def to_jsonable(self) -> Dict:
        record: Dict = {"t": self.t, "kind": self.kind}
        if self.processor is not None:
            record["processor"] = self.processor
        if self.capacity is not None:
            record["capacity"] = str(self.capacity)
        if self.job is not None:
            record["job"] = self.job
        return record

    @classmethod
    def from_jsonable(cls, data: Dict) -> "FaultEvent":
        if not isinstance(data, dict):
            raise FaultPlanError(f"fault event must be an object, got {data!r}")
        known = {"t", "kind", "processor", "capacity", "job"}
        extra = set(data) - known
        if extra:
            raise FaultPlanError(f"unknown fault event fields {sorted(extra)}")
        capacity = data.get("capacity")
        if capacity is not None:
            try:
                capacity = Fraction(capacity)
            except (ValueError, ZeroDivisionError) as exc:
                raise FaultPlanError(f"bad capacity {capacity!r}: {exc}") from exc
        return cls(
            t=data.get("t", -1),
            kind=data.get("kind", "?"),
            processor=data.get("processor"),
            capacity=capacity,
            job=data.get("job"),
        )


@dataclass(frozen=True)
class FaultPlan:
    """A time-sorted tuple of :class:`FaultEvent` records.

    Construction normalizes the order (stable sort by ``t``, so same-step
    events keep their given relative order — a ``restore`` written after a
    ``crash`` at the same ``t`` is applied after it).
    """

    events: Tuple[FaultEvent, ...] = ()

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: e.t)
        )
        object.__setattr__(self, "events", ordered)

    # ------------------------------------------------------------------
    # Queries
    # ------------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.events)

    def __bool__(self) -> bool:
        return bool(self.events)

    def counts(self) -> Dict[str, int]:
        """Event counts per kind (only kinds that occur)."""
        out: Dict[str, int] = {}
        for ev in self.events:
            out[ev.kind] = out.get(ev.kind, 0) + 1
        return out

    def horizon(self) -> int:
        """Time of the last event (0 for an empty plan)."""
        return self.events[-1].t if self.events else 0

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------

    @classmethod
    def empty(cls) -> "FaultPlan":
        return cls(())

    @classmethod
    def create(cls, events: Iterable[FaultEvent]) -> "FaultPlan":
        return cls(tuple(events))

    @classmethod
    def random(
        cls,
        seed: int,
        m: int,
        n_jobs: Optional[int] = None,
        horizon: int = 100,
        events: int = 6,
        allow_aborts: bool = True,
    ) -> "FaultPlan":
        """A seeded random plan over ``m`` processors.

        Deterministic given the arguments (pure :class:`random.Random`
        integer draws — stable across platforms and worker counts).  The
        generator keeps the plan *self-consistent*: it never crashes the
        last online processor, only restores crashed ones, and alternates
        dips with recoveries to full capacity.
        """
        if m < 1:
            raise FaultPlanError("m must be >= 1")
        if events < 0:
            raise FaultPlanError("events must be >= 0")
        rng = random.Random(seed)
        down: set = set()
        dipped = False
        out: List[FaultEvent] = []
        gap = max(1, horizon // max(events, 1))
        t = 0
        for _ in range(events):
            t += rng.randint(1, gap)
            kinds = ["dip"]
            if len(down) < m - 1:
                kinds.append("crash")
            if down:
                kinds.append("restore")
            if allow_aborts and n_jobs:
                kinds.append("abort")
            kind = rng.choice(kinds)
            if kind == "crash":
                p = rng.choice(sorted(set(range(m)) - down))
                down.add(p)
                out.append(FaultEvent(t=t, kind="crash", processor=p))
            elif kind == "restore":
                p = rng.choice(sorted(down))
                down.discard(p)
                out.append(FaultEvent(t=t, kind="restore", processor=p))
            elif kind == "dip":
                if dipped:
                    cap = Fraction(1)
                else:
                    cap = Fraction(rng.randint(1, 3), 4)
                dipped = not dipped
                out.append(FaultEvent(t=t, kind="dip", capacity=cap))
            else:
                out.append(
                    FaultEvent(t=t, kind="abort", job=rng.randrange(n_jobs))
                )
        return cls(tuple(out))

    # ------------------------------------------------------------------
    # Exact JSON round-trip
    # ------------------------------------------------------------------

    def to_jsonable(self) -> Dict:
        return {
            "schema": 1,
            "events": [ev.to_jsonable() for ev in self.events],
        }

    @classmethod
    def from_jsonable(cls, data: Dict) -> "FaultPlan":
        if not isinstance(data, dict) or "events" not in data:
            raise FaultPlanError(
                "fault plan document must be an object with an 'events' list"
            )
        events = data["events"]
        if not isinstance(events, list):
            raise FaultPlanError("'events' must be a list")
        return cls(tuple(FaultEvent.from_jsonable(ev) for ev in events))

    def to_json(self) -> str:
        return json.dumps(self.to_jsonable(), indent=2, sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as exc:
            raise FaultPlanError(f"malformed fault plan JSON: {exc}") from exc
        return cls.from_jsonable(data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(self.to_json() + "\n")

    @classmethod
    def load(cls, path: str) -> "FaultPlan":
        with open(path, encoding="utf-8") as fh:
            return cls.from_json(fh.read())
