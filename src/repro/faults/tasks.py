"""Fault-tolerant execution of SRT task sets (Section 4 model).

``run_tasks_with_faults`` mirrors :func:`repro.faults.runner.run_with_faults`
for the sequential task engine (Listings 3/4): the timeline is cut at
fault boundaries, and between boundaries the residual jobs are re-run
through :func:`repro.tasks.sequential.run_sequential` on the surviving
processors at the dipped capacity.

Semantics under faults:

* ``abort`` cancels the *whole task* (the task model's objective is the
  completion of the last job, so a cancelled job makes the task moot);
* a partially-processed unit job re-enters the next segment as a job
  whose requirement is its residual volume — exact, but note this
  changes the job's ``r_j`` used for ordering, a deliberate modelling
  choice documented in docs/ROBUSTNESS.md;
* tasks are re-ordered at each boundary by non-decreasing residual
  ``r(T)`` (the Listing-3 order applied to what is left).

The fault-free comparison uses :func:`repro.tasks.scheduler.schedule_tasks`
(the Theorem 4.8 split); the degradation ratio is on the sum of
completion times, the SRT objective.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Optional, Set, Tuple

from ..numeric import frac_sum
from ..obs import setup_observer
from ..tasks.model import Task, TaskInstance
from ..tasks.scheduler import schedule_tasks
from ..tasks.sequential import run_sequential
from .model import FaultEvent, FaultPlan
from .runner import FaultRecoveryError

__all__ = ["FaultedTaskResult", "run_tasks_with_faults"]


@dataclass
class FaultedTaskResult:
    """Outcome of :func:`run_tasks_with_faults`."""

    instance: TaskInstance
    plan: FaultPlan
    backend: str
    makespan: int
    #: task id -> completion step (aborted tasks absent)
    completion_times: Dict[int, int]
    #: task id -> step the abort took effect
    aborted: Dict[int, int]
    #: (start, length, capacity, online processor count) per segment
    segments: List[Tuple[int, int, Fraction, int]]
    applied: List[Tuple[FaultEvent, bool]]
    #: fault-free sum of completion times (None if not computed)
    fault_free_sum: Optional[int] = None
    stats: object = field(default=None, repr=False, compare=False)

    def sum_completion_times(self) -> int:
        return sum(self.completion_times.values())

    @property
    def degradation(self) -> Optional[Fraction]:
        """Achieved-vs-fault-free ratio on the SRT objective."""
        if not self.fault_free_sum:
            return None
        return Fraction(self.sum_completion_times(), self.fault_free_sum)


def run_tasks_with_faults(
    instance: TaskInstance,
    plan: FaultPlan,
    backend: str = "auto",
    observer=None,
    collect_stats: bool = False,
    compare_fault_free: bool = True,
    max_segments: int = 100_000,
) -> FaultedTaskResult:
    """Execute the task set under *plan*; see the module docstring."""
    obs, metrics = setup_observer(observer, collect_stats, env=False)
    events = plan.events
    m = instance.m
    # residual volume per (task position, job index)
    residual: Dict[Tuple[int, int], Fraction] = {
        (ti, i): r
        for ti, task in enumerate(instance.tasks)
        for i, r in enumerate(task.requirements)
    }
    task_ids = [task.id for task in instance.tasks]
    completed: Dict[int, int] = {}
    aborted: Dict[int, int] = {}
    down: Set[int] = set()
    capacity = Fraction(1)
    next_event = 0
    t = 0
    segments: List[Tuple[int, int, Fraction, int]] = []
    applied: List[Tuple[FaultEvent, bool]] = []

    def task_alive(ti: int) -> bool:
        if task_ids[ti] in aborted:
            return False
        k = len(instance.tasks[ti].requirements)
        return any(residual[(ti, i)] > 0 for i in range(k))

    while True:
        while next_event < len(events) and events[next_event].t <= t:
            ev = events[next_event]
            next_event += 1
            ok = _apply_task_event(
                ev, m, down, aborted, residual, task_ids, instance, t
            )
            if ev.kind == "dip":
                ok = capacity != ev.capacity
                capacity = ev.capacity
            applied.append((ev, ok))
            if obs is not None:
                obs.on_fault(
                    ev, {"t": t, "applied": ok, "layer": "faults-tasks"}
                )
        alive = [ti for ti in range(len(instance.tasks)) if task_alive(ti)]
        if not alive:
            break
        if len(segments) >= max_segments:
            raise FaultRecoveryError(
                f"fault runner exceeded {max_segments} segments"
            )
        horizon = events[next_event].t if next_event < len(events) else None
        m_eff = m - len(down)
        if m_eff <= 0 or capacity <= 0:
            if next_event >= len(events):
                raise FaultRecoveryError(
                    "machine stalled (no online processor or zero capacity)"
                    " with no restoring event left in the plan"
                )
            segments.append((t, events[next_event].t - t, capacity, m_eff))
            t = events[next_event].t
            continue
        # Listing-3 order on the residual: non-decreasing residual r(T)
        ordered = sorted(
            alive,
            key=lambda ti: (
                frac_sum(
                    residual[(ti, i)]
                    for i in range(len(instance.tasks[ti].requirements))
                    if residual[(ti, i)] > 0
                ),
                task_ids[ti],
            ),
        )
        seg_tasks: List[Task] = []
        maps: Dict[int, List[int]] = {}
        for ti in ordered:
            idxs = [
                i
                for i in range(len(instance.tasks[ti].requirements))
                if residual[(ti, i)] > 0
            ]
            maps[ti] = idxs
            seg_tasks.append(
                Task(
                    id=ti,
                    requirements=tuple(residual[(ti, i)] for i in idxs),
                )
            )
        step_limit = None if horizon is None else horizon - t
        res = run_sequential(
            seg_tasks,
            m_eff,
            capacity,
            record_steps=True,
            backend=backend,
            observer=obs,
            step_limit=step_limit,
        )
        for step in res.steps:
            for (ti, ridx), share in step.shares.items():
                key = (ti, maps[ti][ridx])
                rem = residual[key] - share
                residual[key] = rem if rem > 0 else Fraction(0)
        for ti, ct in res.completion_times.items():
            completed[task_ids[ti]] = t + ct
        segments.append((t, res.makespan, capacity, m_eff))
        t += res.makespan

    fault_free = None
    if compare_fault_free:
        fault_free = schedule_tasks(
            instance, backend=backend
        ).sum_completion_times()
    return FaultedTaskResult(
        instance=instance,
        plan=plan,
        backend=backend,
        makespan=t,
        completion_times=completed,
        aborted=aborted,
        segments=segments,
        applied=applied,
        fault_free_sum=fault_free,
        stats=metrics,
    )


def _apply_task_event(
    ev: FaultEvent,
    m: int,
    down: Set[int],
    aborted: Dict[int, int],
    residual: Dict[Tuple[int, int], Fraction],
    task_ids: List[int],
    instance: TaskInstance,
    t: int,
) -> bool:
    """Apply one non-dip event; dips are handled by the caller."""
    if ev.kind == "crash":
        if ev.processor >= m or ev.processor in down:
            return False
        down.add(ev.processor)
        return True
    if ev.kind == "restore":
        if ev.processor not in down:
            return False
        down.discard(ev.processor)
        return True
    if ev.kind == "abort":
        # abort cancels the whole task; the event's job field is a task id
        if ev.job not in task_ids:
            return False
        ti = task_ids.index(ev.job)
        k = len(instance.tasks[ti].requirements)
        if ev.job in aborted or not any(
            residual[(ti, i)] > 0 for i in range(k)
        ):
            return False
        for i in range(k):
            residual[(ti, i)] = Fraction(0)
        aborted[ev.job] = t
        return True
    return True  # dip: handled by caller
