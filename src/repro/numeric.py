"""Numeric tower used throughout the reproduction.

The paper's algorithm hinges on *exact* predicates: a job is "fractured" iff
its remaining requirement ``s_j(t)`` is not an integer multiple of ``r_j``,
and window feasibility asks whether ``r(W \\ {max W}) < 1`` holds exactly.
Deciding these with floating point is unreliable, so the default
representation for all resource quantities is :class:`fractions.Fraction`.

Floats supplied by callers are converted via ``Fraction(float)`` which is
exact (binary floats are dyadic rationals); integers stay integral.  All
schedulers and validators in this package operate on Fractions internally and
expose them in their outputs; analysis code converts to ``float`` at the very
end for reporting.

A tolerant-comparison helper set is also provided for the optional float
fast path used by the large-scale runtime benchmarks (experiment E4), where
exactness is not needed because only wall-clock time is measured.
"""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Iterable, Sequence, Union

Number = Union[int, float, Fraction]

#: Absolute tolerance used by the float fast path.
FLOAT_EPS = 1e-9


def to_fraction(x: Number) -> Fraction:
    """Convert *x* to an exact :class:`Fraction`.

    Integers and Fractions pass through; floats are converted exactly
    (every finite binary float is a dyadic rational).  Raises
    :class:`ValueError` for NaN or infinite floats.
    """
    if isinstance(x, Fraction):
        return x
    if isinstance(x, bool):  # bool is an int subclass; reject to avoid bugs
        raise TypeError("bool is not a valid numeric quantity")
    if isinstance(x, int):
        return Fraction(x)
    if isinstance(x, float):
        if math.isnan(x) or math.isinf(x):
            raise ValueError(f"non-finite value not allowed: {x!r}")
        return Fraction(x)
    raise TypeError(f"unsupported numeric type: {type(x).__name__}")


def to_fractions(xs: Iterable[Number]) -> list[Fraction]:
    """Convert every element of *xs* via :func:`to_fraction`."""
    return [to_fraction(x) for x in xs]


def frac_sum(xs: Iterable[Fraction]) -> Fraction:
    """Exact sum of Fractions (``sum`` with a Fraction start value)."""
    return sum(xs, Fraction(0))


def is_multiple_of(value: Fraction, unit: Fraction) -> bool:
    """Return True iff *value* is a non-negative integer multiple of *unit*.

    This is the exact predicate behind the paper's notion of a *fractured*
    job: job ``j`` is fractured at time ``t`` iff ``s_j(t)`` is **not** an
    integer multiple of ``r_j``.
    """
    if unit <= 0:
        raise ValueError("unit must be positive")
    if value < 0:
        return False
    q = value / unit
    return q.denominator == 1


def fractional_remainder(value: Fraction, unit: Fraction) -> Fraction:
    """The paper's ``q_j(t)``: remainder of *value* modulo *unit* in [0, unit).

    For an unfractured value this is 0; for a fractured one it is the
    positive part that must be topped up to "unfracture" the job.
    """
    if unit <= 0:
        raise ValueError("unit must be positive")
    q = value / unit
    floor_q = q.numerator // q.denominator
    return value - floor_q * unit


def ceil_div(value: Fraction, unit: Fraction) -> int:
    """Exact ``ceil(value / unit)`` for Fractions, as an int."""
    if unit <= 0:
        raise ValueError("unit must be positive")
    q = value / unit
    return -((-q.numerator) // q.denominator)


def ceil_frac(value: Fraction) -> int:
    """Exact ``ceil(value)`` for a Fraction, as an int."""
    return -((-value.numerator) // value.denominator)


def floor_frac(value: Fraction) -> int:
    """Exact ``floor(value)`` for a Fraction, as an int."""
    return value.numerator // value.denominator


def fmin(*xs: Fraction) -> Fraction:
    """Exact minimum of one or more Fractions."""
    return min(xs)


def fmax(*xs: Fraction) -> Fraction:
    """Exact maximum of one or more Fractions."""
    return max(xs)


def clamp(x: Fraction, lo: Fraction, hi: Fraction) -> Fraction:
    """Clamp *x* into the closed interval [lo, hi]."""
    if lo > hi:
        raise ValueError(f"empty interval: [{lo}, {hi}]")
    return min(max(x, lo), hi)


# ---------------------------------------------------------------------------
# Tolerant float helpers (only used by the float fast path / analysis layer).
# ---------------------------------------------------------------------------


def approx_le(a: float, b: float, eps: float = FLOAT_EPS) -> bool:
    """``a <= b`` up to absolute tolerance *eps*."""
    return a <= b + eps


def approx_ge(a: float, b: float, eps: float = FLOAT_EPS) -> bool:
    """``a >= b`` up to absolute tolerance *eps*."""
    return a + eps >= b


def approx_eq(a: float, b: float, eps: float = FLOAT_EPS) -> bool:
    """``a == b`` up to absolute tolerance *eps*."""
    return abs(a - b) <= eps


def as_floats(xs: Sequence[Fraction]) -> list[float]:
    """Convert a sequence of Fractions to floats for reporting."""
    return [float(x) for x in xs]
