"""Command-line interface: ``repro-sched`` (or ``python -m repro``).

Subcommands
-----------
* ``demo`` — schedule a small example instance and print the timeline;
* ``srj`` — generate a workload family, run Listing 1, report ratio vs LB;
* ``binpack`` — pack random splittable items, compare algorithms;
* ``tasks`` — run the SRT scheduler on a generated task set;
* ``experiment`` — run one of E1..E11 / F1..F3 (or ``all``), print tables;
* ``generate`` — write a workload instance as JSON;
* ``solve`` — read an instance JSON, schedule it (several algorithms),
  optionally print an ASCII Gantt chart and save the schedule JSON;
* ``validate`` — audit a schedule JSON against an instance JSON;
* ``stats`` — run a scheduler with telemetry enabled and print the metrics
  registry (per-case step counts, waste, saturation fractions, phase
  timings), cross-checked against the result's own counters;
* ``faults`` — run an instance under a fault plan (loaded or randomly
  generated from a seed), validate the recovered schedule and print the
  degradation report (see docs/ROBUSTNESS.md);
* ``sweep`` — run/resume/status/trace a registered sweep on the
  experiment fabric; ``status --follow`` tails the live heartbeat
  telemetry of a running sweep, ``run --trace-spans`` records a
  hierarchical span trace and ``trace`` merges the span shards into the
  canonical ``TRACE.jsonl`` (see docs/OBSERVABILITY.md);
* ``perf`` — the durable perf time-series: ``ingest`` appends a BENCH
  report to the history store, ``history`` summarizes it, ``compare``
  diffs a fresh report against the rolling baseline and exits 1 on a
  gated regression;
* ``lint`` — run the AST-based invariant checkers (exact-backend purity,
  derived identities, worker-safety, observer threading; see
  docs/STATIC_ANALYSIS.md) over ``src/repro`` + ``tests`` or explicit
  paths; exits 1 when findings remain, 2 for unknown rules/paths;
* ``serve`` — run the scheduler-as-a-service daemon: bounded admission
  queue with load-shedding, per-request deadlines, worker-crash
  recovery, graceful SIGTERM drain (see docs/SERVICE.md);
* ``call`` — send one request to a running daemon and print the result
  JSON (exit 0) or the structured error (exit 1; exit 2 when the daemon
  cannot be located or the request is malformed).

Every subcommand follows one error contract: malformed input (missing
files, invalid JSON, bad parameter combinations) exits with status 2 and
a single ``repro-sched: error: ...`` line on stderr — never a traceback
(:func:`cli_error`).  Exit 1 is reserved for well-formed runs whose
outcome is negative (gate failures, invalid schedules, service errors).

``solve``, ``srj``, ``tasks`` and ``stats`` accept ``--trace-out FILE`` to
emit a structured JSONL trace (one record per RLE trace run); the
``$REPRO_TRACE`` environment variable does the same for any entry point.
``srj``, ``tasks`` and ``solve`` accept ``--fault-plan FILE`` to run under
fault injection; errors (missing/malformed files, bad plans) exit with
status 2 and a one-line message, never a traceback.
"""

from __future__ import annotations

import argparse
import random
import sys
from fractions import Fraction
from typing import List, Optional

from .analysis import ALL_EXPERIMENTS
from .engine import BACKENDS
from .binpacking import (
    make_items,
    pack_next_fit,
    pack_sliding_window,
    packing_lower_bound,
)
from .core.bounds import makespan_lower_bound
from .core.instance import Instance
from .core.scheduler import schedule_srj
from .tasks import schedule_tasks, srt_lower_bound
from .workloads import make_instance, make_taskset, uniform_fractions


def cli_error(message: str) -> int:
    """The one CLI error contract: one line on stderr, exit status 2.

    Subcommands either raise ``ValueError``/``OSError`` (caught in
    :func:`main`, which delegates here) or call this directly when they
    need to report-and-return without an exception.  Either way the user
    sees ``repro-sched: error: <message>`` and never a traceback.
    """
    print(f"repro-sched: error: {message}", file=sys.stderr)
    return 2


def _open_trace(args: argparse.Namespace):
    """Build the ``--trace-out`` JSONL observer, or ``None``."""
    if getattr(args, "trace_out", None) is None:
        return None
    from .obs import JsonlTraceObserver

    return JsonlTraceObserver(args.trace_out)


def _close_trace(tracer) -> None:
    if tracer is not None:
        tracer.close()
        print(f"wrote JSONL trace to {tracer.path}")


def _load_fault_plan(args: argparse.Namespace):
    """Load the ``--fault-plan`` file, or ``None`` when the flag is unset."""
    path = getattr(args, "fault_plan", None)
    if path is None:
        return None
    from .faults import FaultPlan

    return FaultPlan.load(path)


def _print_faulted_summary(result) -> int:
    """Shared tail for fault-injected runs: validate + degradation line."""
    from .faults import validate_faulted

    report = validate_faulted(result)
    print(
        f"faulted makespan={result.makespan}  "
        f"fault-free={result.fault_free_makespan}  "
        f"events applied={result.n_applied()}/{len(result.plan)}  "
        f"aborted={len(result.aborted)}"
    )
    if result.degradation is not None:
        print(
            f"degradation ratio: {result.degradation} "
            f"({float(result.degradation):.4f})"
        )
    if report.ok:
        print("recovered schedule: valid")
        return 0
    print(f"recovered schedule INVALID: {len(report.violations)} violation(s)")
    for v in report.violations[:20]:
        print(f"  {v}")
    return 1


def _cmd_demo(args: argparse.Namespace) -> int:
    inst = Instance.from_requirements(
        m=4,
        requirements=[
            Fraction(1, 5), Fraction(2, 5), Fraction(1, 2),
            Fraction(7, 10), Fraction(6, 5),
        ],
        sizes=[3, 2, 1, 2, 4],
    )
    result = schedule_srj(inst, backend=args.backend)
    print(f"instance: m={inst.m}, n={inst.n}")
    print(f"lower bound (Eq. 1): {makespan_lower_bound(inst)}")
    print(f"makespan:            {result.makespan}")
    print("timeline (job: share per step):")
    for t, step in enumerate(result.iter_steps(), start=1):
        cells = ", ".join(
            f"j{j}@p{p}:{share}" for j, (p, share) in sorted(step.items())
        )
        print(f"  t={t:>2}  {cells}")
    return 0


def _cmd_srj(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    inst = make_instance(args.family, rng, args.m, args.n)
    plan = _load_fault_plan(args)
    if plan is not None:
        from .faults import run_with_faults

        tracer = _open_trace(args)
        result = run_with_faults(
            inst, plan, backend=args.backend, observer=tracer
        )
        _close_trace(tracer)
        print(f"family={args.family} m={args.m} n={args.n} seed={args.seed}")
        return _print_faulted_summary(result)
    tracer = _open_trace(args)
    result = schedule_srj(inst, backend=args.backend, observer=tracer)
    _close_trace(tracer)
    lb = makespan_lower_bound(inst)
    print(f"family={args.family} m={args.m} n={args.n} seed={args.seed}")
    print(f"makespan={result.makespan}  LB={lb}  ratio={result.makespan/lb:.4f}")
    print(f"guarantee: 2+1/(m-2) = {2 + 1/(args.m-2):.4f}"
          if args.m >= 3 else "guarantee: n/a for m < 3")
    print(f"steps with >=m-2 fully-served jobs: {result.steps_full_jobs}")
    print(f"steps with full resource usage:    {result.steps_full_resource}")
    return 0


def _cmd_binpack(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    items = make_items(uniform_fractions(rng, args.n, hi=Fraction(6, 5)))
    lb = packing_lower_bound(items, args.k)
    sw = pack_sliding_window(items, args.k, backend=args.backend)
    nf = pack_next_fit(items, args.k)
    print(f"n={args.n} k={args.k} LB={lb}")
    print(f"sliding window: {sw.num_bins} bins ({sw.num_bins/lb:.4f}x LB)")
    print(f"next fit:       {nf.num_bins} bins ({nf.num_bins/lb:.4f}x LB)")
    return 0


def _cmd_tasks(args: argparse.Namespace) -> int:
    rng = random.Random(args.seed)
    ti = make_taskset(args.family, rng, args.m, args.k)
    plan = _load_fault_plan(args)
    if plan is not None:
        from .faults import run_tasks_with_faults

        tracer = _open_trace(args)
        res = run_tasks_with_faults(
            ti, plan, backend=args.backend, observer=tracer
        )
        _close_trace(tracer)
        s = res.sum_completion_times()
        print(f"family={args.family} m={args.m} tasks={args.k}")
        print(
            f"faulted sum completion times={s}  "
            f"fault-free={res.fault_free_sum}  "
            f"events applied={sum(ok for _, ok in res.applied)}"
            f"/{len(res.plan)}  aborted tasks={len(res.aborted)}"
        )
        if res.degradation is not None:
            print(
                f"degradation ratio: {res.degradation} "
                f"({float(res.degradation):.4f})"
            )
        return 0
    tracer = _open_trace(args)
    res = schedule_tasks(ti, backend=args.backend, observer=tracer)
    _close_trace(tracer)
    lb = srt_lower_bound(ti)
    s = res.sum_completion_times()
    print(f"family={args.family} m={args.m} tasks={args.k} jobs={ti.n_jobs}")
    print(f"sum completion times={s}  LB={lb}  ratio={s/lb:.4f}")
    if args.m >= 4:
        print(f"guarantee factor: 2+4/(m-3) = {2 + 4/(args.m-3):.4f} (+o(1))")
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    names = (
        sorted(ALL_EXPERIMENTS) if args.id == "all" else [args.id.lower()]
    )
    for name in names:
        if name not in ALL_EXPERIMENTS:
            return cli_error(
                f"unknown experiment {name!r}; "
                f"have {sorted(ALL_EXPERIMENTS)}"
            )
        table = ALL_EXPERIMENTS[name](scale=args.scale, seed=args.seed)
        print(table.render())
        print()
        if args.csv:
            from pathlib import Path

            from .analysis import write_table_csv

            out_dir = Path(args.csv)
            out_dir.mkdir(parents=True, exist_ok=True)
            path = write_table_csv(table, out_dir / f"{name}.csv")
            print(f"(csv written to {path})")
    return 0


def _cmd_generate(args: argparse.Namespace) -> int:
    from .io import instance_to_json

    rng = random.Random(args.seed)
    inst = make_instance(args.family, rng, args.m, args.n)
    text = instance_to_json(inst)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text + "\n")
        print(f"wrote {args.output} (m={inst.m}, n={inst.n})")
    else:
        print(text)
    return 0


_SOLVERS = {
    "window": lambda inst: schedule_srj(inst),
    "unit": None,  # handled specially (requires unit sizes)
    "list": None,
    "greedy": None,
}


def _cmd_solve(args: argparse.Namespace) -> int:
    from .analysis import render_gantt
    from .io import instance_from_json, schedule_to_json

    with open(args.input) as fh:
        inst = instance_from_json(fh.read())
    plan = _load_fault_plan(args)
    if plan is not None:
        if args.algorithm != "window":
            raise ValueError(
                "--fault-plan is only supported with --algorithm window"
            )
        from .faults import run_with_faults

        tracer = _open_trace(args)
        result = run_with_faults(
            inst, plan, backend=args.backend, observer=tracer
        )
        _close_trace(tracer)
        print(f"algorithm=window (fault plan: {args.fault_plan})")
        return _print_faulted_summary(result)
    tracer = _open_trace(args)
    # window/unit return trace-bearing results that render without
    # materializing a Schedule; the simulator baselines return Schedules.
    renderable = None
    if args.algorithm == "window":
        renderable = schedule_srj(inst, backend=args.backend, observer=tracer)
    elif args.algorithm == "unit":
        from .core.unit import schedule_unit

        renderable = schedule_unit(inst, backend=args.backend, observer=tracer)
    elif args.algorithm == "list":
        from .baselines import schedule_list_scheduling

        renderable = schedule_list_scheduling(inst, observer=tracer).schedule
    elif args.algorithm == "greedy":
        from .baselines import schedule_greedy_fill

        renderable = schedule_greedy_fill(inst, observer=tracer).schedule
    else:  # pragma: no cover - argparse choices guard this
        raise ValueError(args.algorithm)
    _close_trace(tracer)
    lb = makespan_lower_bound(inst)
    print(
        f"algorithm={args.algorithm} makespan={renderable.makespan} LB={lb} "
        f"ratio={renderable.makespan/lb:.4f}"
    )
    if args.gantt:
        print(render_gantt(renderable))
    if args.output:
        schedule = (
            renderable.schedule(max_steps=args.max_steps)
            if hasattr(renderable, "iter_steps")
            else renderable
        )
        with open(args.output, "w") as fh:
            fh.write(schedule_to_json(schedule) + "\n")
        print(f"wrote schedule to {args.output}")
    return 0


def _cmd_validate(args: argparse.Namespace) -> int:
    from .core.validate import validate_schedule
    from .io import instance_from_json, schedule_from_json

    with open(args.instance) as fh:
        inst = instance_from_json(fh.read())
    with open(args.schedule) as fh:
        schedule = schedule_from_json(fh.read(), inst)
    report = validate_schedule(schedule)
    if report.ok:
        print(f"OK: feasible schedule with makespan {report.makespan}")
        return 0
    print(f"INVALID: {len(report.violations)} violation(s)")
    for v in report.violations[:50]:
        print(f"  {v}")
    return 1


def _cmd_stats(args: argparse.Namespace) -> int:
    import json as _json

    from .core.validate import validate_result
    from .obs import StatsObserver

    if args.input:
        from .io import instance_from_json

        with open(args.input) as fh:
            inst = instance_from_json(fh.read())
        source = f"input={args.input}"
    else:
        rng = random.Random(args.seed)
        inst = make_instance(args.family, rng, args.m, args.n)
        source = (
            f"family={args.family} m={args.m} n={args.n} seed={args.seed}"
        )
    tracer = _open_trace(args)
    if args.algorithm == "window":
        result = schedule_srj(
            inst, backend=args.backend, observer=tracer, collect_stats=True
        )
    else:
        from .core.unit import schedule_unit

        result = schedule_unit(
            inst, backend=args.backend, observer=tracer, collect_stats=True
        )
    metrics = result.stats
    # the validate phase feeds its span into the same registry
    report = validate_result(result, observer=StatsObserver(metrics))
    _close_trace(tracer)

    # cross-check the observer's accounting against the result's own
    mismatches = []
    for name, got, want in (
        ("steps_total", metrics.counter("steps_total"), result.makespan),
        (
            "steps_full_jobs",
            metrics.counter("steps_full_jobs"),
            result.steps_full_jobs,
        ),
        (
            "steps_full_resource",
            metrics.counter("steps_full_resource"),
            result.steps_full_resource,
        ),
        (
            "total_waste",
            Fraction(metrics.counter("total_waste")),
            result.total_waste,
        ),
    ):
        if got != want:
            mismatches.append(f"{name}: observer={got} result={want}")

    if args.json:
        payload = {
            "source": source,
            "algorithm": args.algorithm,
            "backend": args.backend,
            "makespan": result.makespan,
            "valid": report.ok,
            "agreement": not mismatches,
            "mismatches": mismatches,
            "metrics": metrics.to_jsonable(),
        }
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{source} algorithm={args.algorithm} backend={args.backend}")
        print(f"makespan={result.makespan}  schedule valid: "
              f"{'yes' if report.ok else 'NO'}")
        steps = metrics.counter("steps_total")
        print("per-case step counts:")
        for key in sorted(metrics.counters):
            if key.startswith("steps_case."):
                count = metrics.counters[key]
                frac = count / steps if steps else 0.0
                print(f"  {key[len('steps_case.'):]:<12} {count:>8}"
                      f"  ({frac:.1%})")
        for label, key in (
            (">=m-2 fully-served jobs", "steps_full_jobs"),
            ("full resource usage", "steps_full_resource"),
        ):
            count = metrics.counter(key)
            frac = count / steps if steps else 0.0
            print(f"steps with {label}: {count} ({frac:.1%})")
        print(f"total waste: {metrics.counter('total_waste')}")
        print("phase timings (seconds):")
        for key in sorted(metrics.counters):
            if key.startswith("span_seconds."):
                print(f"  {key[len('span_seconds.'):]:<10} "
                      f"{metrics.counters[key]:.6f}")
        if mismatches:
            print("MISMATCH between observer and result:")
            for line in mismatches:
                print(f"  {line}")
        else:
            print("agreement with scheduler result: OK")
    if mismatches or not report.ok:
        return 1
    return 0


def _cmd_faults(args: argparse.Namespace) -> int:
    import json as _json

    from .faults import (
        FaultPlan,
        degradation_report,
        run_with_faults,
        validate_faulted,
    )

    if args.input:
        from .io import instance_from_json

        with open(args.input) as fh:
            inst = instance_from_json(fh.read())
        source = f"input={args.input}"
    else:
        rng = random.Random(args.seed)
        inst = make_instance(args.family, rng, args.m, args.n)
        source = (
            f"family={args.family} m={args.m} n={args.n} seed={args.seed}"
        )
    if args.plan:
        plan = FaultPlan.load(args.plan)
        plan_source = f"plan={args.plan}"
    else:
        plan = FaultPlan.random(
            args.fault_seed,
            m=inst.m,
            n_jobs=inst.n,
            horizon=args.horizon,
            events=args.events,
        )
        plan_source = (
            f"random plan: fault-seed={args.fault_seed} "
            f"events={args.events} horizon={args.horizon}"
        )
    if args.save_plan:
        plan.save(args.save_plan)
        print(f"wrote fault plan to {args.save_plan}")
    tracer = _open_trace(args)
    result = run_with_faults(
        inst,
        plan,
        backend=args.backend,
        observer=tracer,
        collect_stats=True,
        checkpoint_every=args.checkpoint_every,
    )
    _close_trace(tracer)
    report = validate_faulted(result)
    summary = degradation_report(result)
    if args.json:
        payload = dict(summary)
        payload["source"] = source
        payload["plan"] = plan.to_jsonable()
        payload["valid"] = report.ok
        payload["violations"] = list(report.violations)
        print(_json.dumps(payload, indent=2, sort_keys=True))
    else:
        print(f"{source}  backend={args.backend}")
        print(plan_source)
        print("event counts:", dict(plan.counts()))
        for key in (
            "makespan",
            "fault_free_makespan",
            "degradation_exact",
            "degradation",
            "events_planned",
            "events_applied",
            "jobs_completed",
            "jobs_aborted",
            "segments",
            "checkpoints",
        ):
            if key in summary:
                print(f"  {key:<20} {summary[key]}")
        if result.stats is not None:
            faults_total = result.stats.counter("faults_total")
            print(f"  {'faults observed':<20} {faults_total}")
        print(
            "recovered schedule:"
            f" {'valid' if report.ok else 'INVALID'}"
        )
        for v in report.violations[:20]:
            print(f"  {v}")
    return 0 if report.ok else 1


def _cmd_sweep(args: argparse.Namespace) -> int:
    import json as _json

    from .perf.bench import parse_shard
    from .sweep import DEFAULT_CACHE_DIR, sweep_status
    from .sweep.registry import get_sweep
    from .sweep.runner import SPAN_DIR_NAME
    from .sweep.store import ResultStore

    entry = get_sweep(args.name)
    if args.cache_dir is None:
        args.cache_dir = DEFAULT_CACHE_DIR
    spec = entry.build_spec(args.scale, args.seed)
    checkpoint_dir = ResultStore(args.cache_dir, spec.name).dir

    if args.action == "status":
        from .obs.report import follow, live_status

        if args.follow:
            # raises ValueError (exit 2) for a missing checkpoint dir
            return follow(checkpoint_dir, interval=args.interval)
        status = sweep_status(spec, args.cache_dir)
        try:
            live = live_status(checkpoint_dir)
        except ValueError:
            live = None
        if args.json:
            status["live"] = live
            print(_json.dumps(status, indent=2, sort_keys=True))
        else:
            print(
                f"{status['sweep']} ({status['version'] or 'unversioned'}, "
                f"spec {status['spec_key']}): "
                f"{status['cached']}/{status['total']} points cached "
                f"({'complete' if status['complete'] else 'incomplete'}), "
                f"{status['store_entries']} store entries in {args.cache_dir}"
            )
            if live is not None:
                from .obs.report import format_live_status

                print(format_live_status(live))
        return 0

    if args.action == "trace":
        from .obs.spans import merge_spans, write_merged_trace

        span_dir = checkpoint_dir / SPAN_DIR_NAME
        # raises ValueError (exit 2) when there are no span shards
        records = merge_spans(span_dir)
        path = write_merged_trace(
            span_dir, out=args.out, timings=args.timings
        )
        print(f"merged {len(records)} spans -> {path}")
        return 0

    # "run" and "resume" are the same operation — the content-addressed
    # store makes every run incremental; "resume" just states the intent
    shard = parse_shard(args.shard)
    out = args.out if args.out is not None else (
        None if shard is not None else entry.default_out
    )
    report = entry.run(
        args.scale, args.seed, args.cache_dir, args.workers, shard, out,
        spans=args.trace_spans, timeout=args.timeout,
        retries=args.retries, backoff=args.backoff,
    )
    cache = report.get("cache", {})
    rows = report.get("rows", [])
    print(
        f"{entry.name}: {len(rows)} rows "
        f"({cache.get('hits', 0)} cached, {cache.get('solved', 0)} solved)"
        + (f"; wrote {out}" if out else "")
    )
    if args.trace_spans:
        print(
            f"span shards under {checkpoint_dir / SPAN_DIR_NAME} "
            f"(merge with: repro-sched sweep trace {entry.name})"
        )
    summary = report.get("summary")
    if summary is not None and not args.json:
        for key, value in summary.items():
            print(f"  {key:<28} {value}")
    if args.json:
        print(_json.dumps(report, indent=2))
    # gated sweeps (bench-obs) carry a pass flag; surface it as exit status
    if summary is not None and summary.get("passed") is False:
        return 1
    return 0


def _cmd_perf(args: argparse.Namespace) -> int:
    import json as _json

    from .obs.timeseries import DEFAULT_HISTORY_DIR, PerfHistory

    history = PerfHistory(
        args.history_dir if args.history_dir is not None
        else DEFAULT_HISTORY_DIR
    )

    def load_report(path):
        if path is None:
            raise ValueError(
                f"perf {args.action} requires a BENCH report file"
            )
        with open(path, encoding="utf-8") as fh:
            try:
                report = _json.load(fh)
            except _json.JSONDecodeError as exc:
                raise ValueError(f"{path}: not valid JSON ({exc})") from None
        if not isinstance(report, dict):
            raise ValueError(
                f"{path}: expected a BENCH report object, got "
                f"{type(report).__name__}"
            )
        return report

    if args.action == "ingest":
        report = load_report(args.file)
        n = history.ingest(report, bench=args.bench)
        print(f"ingested {n} row(s) into {history.root}")
        return 0

    if args.action == "history":
        summaries = history.summary(bench=args.bench)
        if args.json:
            print(_json.dumps(summaries, indent=2, sort_keys=True))
            return 0
        if not summaries:
            print(f"no perf history under {history.root}")
            return 0
        for s in summaries:
            ident = ",".join(
                f"{k}={v}" for k, v in sorted(s["identity"].items())
            )
            latest = ",".join(
                f"{k}={v}" for k, v in sorted(s["latest"].items())
                if isinstance(v, (int, float))
            )
            print(
                f"{s['bench']} [{s['key'][:12]}] {ident or '-'} "
                f"({s['code_version']}, {s['observations']} obs): {latest}"
            )
        return 0

    # compare
    report = load_report(args.file)
    verdict = history.compare(
        report, bench=args.bench, gate=args.gate, window=args.window
    )
    if args.json:
        print(_json.dumps(verdict, indent=2, sort_keys=True))
    else:
        print(
            f"{verdict['bench']} ({verdict['code_version']}): "
            f"{len(verdict['rows'])} point(s) vs rolling baseline "
            f"(window {verdict['window']}, gate {verdict['gate']:.0%})"
        )
        if verdict["new_points"]:
            print(f"  {verdict['new_points']} point(s) with no history yet")
        for reg in verdict["regressions"]:
            ident = ",".join(
                f"{k}={v}" for k, v in sorted(reg["identity"].items())
            )
            print(
                f"  REGRESSED {reg['metric']} at {ident or '-'}: "
                f"{reg['value']:.6f}s vs baseline {reg['baseline']:.6f}s "
                f"({reg['delta']:+.1%})"
            )
        print("PASS" if verdict["ok"] else "REGRESSED")
    if verdict["ok"] and args.ingest:
        n = history.ingest(report, bench=args.bench)
        print(f"ingested {n} row(s) into {history.root}")
    return 0 if verdict["ok"] else 1


def _cmd_serve(args: argparse.Namespace) -> int:
    from .service import ServiceConfig, serve

    config = ServiceConfig(
        host=args.host,
        port=args.port,
        state_dir=args.state_dir,
        workers=args.workers,
        queue_limit=args.queue_limit,
        default_deadline_s=args.default_deadline,
        timeout=args.timeout,
        retries=args.retries,
        backoff=args.backoff,
        allow_test_faults=args.allow_test_faults,
        heartbeat_interval_s=args.heartbeat_interval,
    )
    # bad parameter combos raise ValueError -> exit 2 via main()
    config.validate()
    return serve(config)


def _cmd_call(args: argparse.Namespace) -> int:
    import json as _json

    from .service import (
        RetryableServiceError,
        ServiceClient,
        ServiceError,
        locate_service,
    )

    if args.params is not None:
        try:
            params = _json.loads(args.params)
        except _json.JSONDecodeError as exc:
            raise ValueError(f"--params is not valid JSON: {exc}") from None
        if not isinstance(params, dict):
            raise ValueError(
                f"--params must be a JSON object, got "
                f"{type(params).__name__}"
            )
    else:
        params = {}

    if args.host is not None:
        if args.port is None:
            raise ValueError("--host requires --port")
        host, port = args.host, args.port
    else:
        # missing/corrupt/stopped state file raises ValueError -> exit 2
        state = locate_service(args.state_dir)
        host, port = state["host"], state["port"]

    # connection failures are OSError -> exit 2 via main()
    with ServiceClient(host, port, timeout=args.timeout) as client:
        try:
            result = client.call_checked(
                args.method, params, deadline_s=args.deadline,
                max_retries=args.retries,
            )
        except RetryableServiceError as exc:
            print(
                _json.dumps(
                    {"error": {"code": exc.code, "message": exc.message,
                               "retry_after_s": exc.retry_after_s}},
                    indent=2, sort_keys=True,
                )
            )
            return 1
        except ServiceError as exc:
            print(
                _json.dumps(
                    {"error": {"code": exc.code, "message": exc.message}},
                    indent=2, sort_keys=True,
                )
            )
            return 1
    print(_json.dumps(result, indent=2, sort_keys=True))
    return 0


def _cmd_lint(args: argparse.Namespace) -> int:
    import json as _json

    from .lint import run_lint

    # unknown rules and missing paths raise ValueError -> exit 2 with the
    # standard one-line error (never a traceback)
    report = run_lint(paths=args.paths or None, rules=args.rule or None)
    if args.json:
        print(_json.dumps(report.to_jsonable(), indent=2, sort_keys=True))
    else:
        print(report.render_text())
    return 0 if report.ok else 1


def _cmd_selftest(args: argparse.Namespace) -> int:
    from .analysis.selftest import format_selftest, run_selftest

    result = run_selftest(trials=args.trials, seed=args.seed)
    print(format_selftest(result))
    return 0 if result.ok else 1


def _cmd_report(args: argparse.Namespace) -> int:
    from .analysis.report import generate_report

    generate_report(
        output=args.output,
        scale=args.scale,
        seed=args.seed,
        experiments=args.only,
    )
    print(f"wrote {args.output}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-sched",
        description="Multiprocessor scheduling with a sharable resource "
        "(SPAA 2017 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_backend_flag(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--backend",
            choices=BACKENDS,
            default="auto",
            help="numeric backend: exact rationals ('fraction') or the "
            "bit-identical scaled-integer fast path ('int'; 'auto' "
            "selects it)",
        )

    def add_trace_flag(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--trace-out",
            default=None,
            metavar="FILE",
            help="write a structured JSONL trace of the run (one record "
            "per RLE trace run; see also the $REPRO_TRACE env var)",
        )

    def add_fault_flag(sp: argparse.ArgumentParser) -> None:
        sp.add_argument(
            "--fault-plan",
            default=None,
            metavar="FILE",
            help="run under the fault plan in FILE (JSON; see "
            "'repro-sched faults --save-plan' and docs/ROBUSTNESS.md)",
        )

    p = sub.add_parser("demo", help="schedule a toy instance, print timeline")
    add_backend_flag(p)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser("srj", help="run Listing 1 on a generated workload")
    p.add_argument("--family", default="uniform")
    p.add_argument("-m", type=int, default=8)
    p.add_argument("-n", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    add_backend_flag(p)
    add_trace_flag(p)
    add_fault_flag(p)
    p.set_defaults(func=_cmd_srj)

    p = sub.add_parser("binpack", help="bin packing with splittable items")
    p.add_argument("-k", type=int, default=4)
    p.add_argument("-n", type=int, default=60)
    p.add_argument("--seed", type=int, default=0)
    add_backend_flag(p)
    p.set_defaults(func=_cmd_binpack)

    p = sub.add_parser("tasks", help="run the SRT (Section 4) scheduler")
    p.add_argument("--family", default="mixed")
    p.add_argument("-m", type=int, default=8)
    p.add_argument("-k", type=int, default=20)
    p.add_argument("--seed", type=int, default=0)
    add_backend_flag(p)
    add_trace_flag(p)
    add_fault_flag(p)
    p.set_defaults(func=_cmd_tasks)

    p = sub.add_parser(
        "experiment", help="run an experiment (e1..e11, f1..f3 | all)"
    )
    p.add_argument("id")
    p.add_argument("--scale", choices=("small", "full"), default="small")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--csv", default=None, metavar="DIR",
                   help="also write each table as CSV into DIR")
    p.set_defaults(func=_cmd_experiment)

    p = sub.add_parser("generate", help="write a workload instance as JSON")
    p.add_argument("--family", default="uniform")
    p.add_argument("-m", type=int, default=8)
    p.add_argument("-n", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("-o", "--output", default=None)
    p.set_defaults(func=_cmd_generate)

    p = sub.add_parser("solve", help="schedule an instance JSON file")
    p.add_argument("--input", required=True)
    p.add_argument(
        "--algorithm",
        choices=("window", "unit", "list", "greedy"),
        default="window",
    )
    p.add_argument("--gantt", action="store_true")
    p.add_argument("-o", "--output", default=None)
    p.add_argument("--max-steps", type=int, default=1_000_000)
    add_backend_flag(p)
    add_trace_flag(p)
    add_fault_flag(p)
    p.set_defaults(func=_cmd_solve)

    p = sub.add_parser(
        "validate", help="audit a schedule JSON against an instance JSON"
    )
    p.add_argument("--instance", required=True)
    p.add_argument("--schedule", required=True)
    p.set_defaults(func=_cmd_validate)

    p = sub.add_parser(
        "stats",
        help="run a scheduler with telemetry and print the metrics "
        "(cross-checked against the result)",
    )
    p.add_argument(
        "--input", default=None, metavar="FILE",
        help="instance JSON to schedule (default: generate a workload)",
    )
    p.add_argument("--family", default="uniform")
    p.add_argument("-m", type=int, default=8)
    p.add_argument("-n", type=int, default=100)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--algorithm", choices=("window", "unit"), default="window"
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the full registry as JSON instead of the table",
    )
    add_backend_flag(p)
    add_trace_flag(p)
    p.set_defaults(func=_cmd_stats)

    p = sub.add_parser(
        "faults",
        help="run an instance under a fault plan, print the degradation "
        "report and validate the recovered schedule",
    )
    p.add_argument(
        "--input", default=None, metavar="FILE",
        help="instance JSON to schedule (default: generate a workload)",
    )
    p.add_argument("--family", default="uniform")
    p.add_argument("-m", type=int, default=8)
    p.add_argument("-n", type=int, default=50)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--plan", default=None, metavar="FILE",
        help="fault plan JSON (default: generate one from --fault-seed)",
    )
    p.add_argument("--fault-seed", type=int, default=0)
    p.add_argument("--events", type=int, default=6)
    p.add_argument("--horizon", type=int, default=100)
    p.add_argument(
        "--checkpoint-every", type=int, default=None, metavar="STEPS",
        help="also checkpoint every STEPS steps (segment boundaries "
        "always checkpoint)",
    )
    p.add_argument(
        "--save-plan", default=None, metavar="FILE",
        help="write the (possibly generated) fault plan to FILE",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the degradation report as JSON",
    )
    add_backend_flag(p)
    add_trace_flag(p)
    p.set_defaults(func=_cmd_faults)

    p = sub.add_parser(
        "sweep",
        help="run/resume/status a registered sweep on the experiment "
        "fabric (content-addressed cache, sharding; docs/SCALING.md)",
    )
    p.add_argument(
        "action", choices=("run", "resume", "status", "trace"),
        help="'run' and 'resume' are the same incremental operation; "
        "'status' reports cache coverage (plus live heartbeat telemetry) "
        "without solving anything; 'trace' merges recorded span shards "
        "into the canonical TRACE.jsonl",
    )
    p.add_argument(
        "name",
        help="registered sweep: bench, bench-srt, bench-obs, faultsweep",
    )
    p.add_argument("--scale", choices=("small", "full"), default="small")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--cache-dir", default=None, metavar="DIR",
        help="content-addressed result store "
        "(default: .repro-cache/sweeps)",
    )
    p.add_argument(
        "--shard", default=None, metavar="I/K",
        help="run only points with index %% K == I into the shared cache",
    )
    p.add_argument("--workers", type=int, default=None)
    p.add_argument(
        "-o", "--out", default=None, metavar="FILE",
        help="report artifact (default: the sweep's canonical file, "
        "e.g. BENCH_1.json; suppressed for sharded runs)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the full report/status as JSON",
    )
    p.add_argument(
        "--follow", action="store_true",
        help="with 'status': poll the heartbeat telemetry until the "
        "sweep completes (Ctrl-C to stop)",
    )
    p.add_argument(
        "--interval", type=float, default=2.0, metavar="SECONDS",
        help="polling interval for --follow (default: 2s)",
    )
    p.add_argument(
        "--trace-spans", action="store_true",
        help="with 'run'/'resume': record hierarchical trace spans into "
        "the checkpoint directory (merge with the 'trace' action)",
    )
    p.add_argument(
        "--timings", action="store_true",
        help="with 'trace': keep wall-clock fields in the merged trace "
        "(default drops them so the output is byte-reproducible)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="per-point wall-clock bound enforced by the hardened "
        "runner (default: unbounded)",
    )
    p.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="re-runs for points lost to a crashed worker or a timeout "
        "(default: 2)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="base delay between retry rounds, doubled each round "
        "(default: 0.05)",
    )
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "perf",
        help="durable perf time-series over BENCH reports: ingest into "
        "the history store, summarize it, or compare a fresh report "
        "against the rolling baseline (exit 1 on a gated regression)",
    )
    p.add_argument(
        "action", choices=("ingest", "history", "compare"),
        help="'ingest FILE' appends a report's rows; 'history' lists "
        "stored series; 'compare FILE' gates a report against the "
        "rolling baseline",
    )
    p.add_argument(
        "file", nargs="?", default=None,
        help="BENCH report JSON (required for ingest/compare)",
    )
    p.add_argument(
        "--bench", default=None, metavar="NAME",
        help="bench name override (default: the report's own 'bench' "
        "field; for 'history', filter to one bench)",
    )
    p.add_argument(
        "--gate", type=float, default=0.10, metavar="FRACTION",
        help="relative regression gate for 'compare' (default: 0.10 "
        "= 10%% above baseline)",
    )
    p.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="rolling-baseline window: median of the last N "
        "observations (default: 5)",
    )
    p.add_argument(
        "--history-dir", default=None, metavar="DIR",
        help="history store root (default: .repro-cache/perf-history)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the summary/verdict as JSON",
    )
    p.add_argument(
        "--ingest", action="store_true",
        help="with 'compare': ingest the report after a passing "
        "comparison (so green runs extend the baseline)",
    )
    p.set_defaults(func=_cmd_perf)

    p = sub.add_parser(
        "serve",
        help="run the scheduler-as-a-service daemon: bounded admission, "
        "per-request deadlines, worker-crash recovery, graceful SIGTERM "
        "drain (docs/SERVICE.md)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument(
        "--port", type=int, default=0,
        help="TCP port (default: 0 = pick a free port; the bound port "
        "is published in the state file)",
    )
    p.add_argument(
        "--state-dir", default=".repro-service", metavar="DIR",
        help="where SERVICE.json (host/port/status), the heartbeat, the "
        "request log and drain checkpoints live",
    )
    p.add_argument(
        "--workers", type=int, default=2, metavar="N",
        help="concurrent request slots; each request runs in its own "
        "worker process (default: 2)",
    )
    p.add_argument(
        "--queue-limit", type=int, default=16, metavar="N",
        help="admission-queue bound; requests beyond it are shed with "
        "an 'overloaded' error (default: 16)",
    )
    p.add_argument(
        "--default-deadline", type=float, default=30.0, metavar="SECONDS",
        help="deadline for requests that do not send deadline_s "
        "(default: 30)",
    )
    p.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="hard per-attempt cap for worker execution, in addition to "
        "the per-request deadline (default: the deadline alone)",
    )
    p.add_argument(
        "--retries", type=int, default=1, metavar="N",
        help="re-runs for a request lost to a crashed worker "
        "(default: 1)",
    )
    p.add_argument(
        "--backoff", type=float, default=0.05, metavar="SECONDS",
        help="base delay between worker retry rounds (default: 0.05)",
    )
    p.add_argument(
        "--heartbeat-interval", type=float, default=2.0, metavar="SECONDS",
        help="heartbeat telemetry period (default: 2s)",
    )
    p.add_argument(
        "--allow-test-faults", action="store_true",
        help="accept the _fault request parameter (crash/hang/error "
        "injection; the serve-smoke battery only)",
    )
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "call",
        help="send one request to a running repro-sched daemon and "
        "print the result (or the structured error)",
    )
    p.add_argument(
        "method",
        help="request method: solve, simulate, stats, ping, status, "
        "sweep_status",
    )
    p.add_argument(
        "--params", default=None, metavar="JSON",
        help="request parameters as a JSON object (default: {})",
    )
    p.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS",
        help="per-request deadline (default: the server's default)",
    )
    p.add_argument(
        "--state-dir", default=".repro-service", metavar="DIR",
        help="locate the daemon via DIR/SERVICE.json "
        "(default: .repro-service)",
    )
    p.add_argument(
        "--host", default=None,
        help="connect directly instead of via --state-dir "
        "(requires --port)",
    )
    p.add_argument("--port", type=int, default=None)
    p.add_argument(
        "--timeout", type=float, default=60.0, metavar="SECONDS",
        help="client socket timeout (default: 60)",
    )
    p.add_argument(
        "--retries", type=int, default=0, metavar="N",
        help="client-side retries for retryable errors (overloaded, "
        "shutting_down, worker_crashed), honoring retry_after_s "
        "(default: 0)",
    )
    p.set_defaults(func=_cmd_call)

    p = sub.add_parser(
        "lint",
        help="run the AST invariant checkers (exactness, determinism, "
        "worker-safety, telemetry discipline; docs/STATIC_ANALYSIS.md)",
    )
    p.add_argument(
        "paths", nargs="*", default=None, metavar="PATH",
        help="files or directories to lint (default: src/repro + tests, "
        "skipping __pycache__ and .repro-cache)",
    )
    p.add_argument(
        "--rule", action="append", default=None, metavar="NAME",
        help="run only this rule (repeatable; default: all registered "
        "rules; unknown names exit 2)",
    )
    p.add_argument(
        "--json", action="store_true",
        help="emit the findings report as JSON (CI uploads this as an "
        "artifact)",
    )
    p.set_defaults(func=_cmd_lint)

    p = sub.add_parser(
        "selftest", help="quick internal consistency battery"
    )
    p.add_argument("--trials", type=int, default=25)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_selftest)

    p = sub.add_parser(
        "report", help="regenerate EXPERIMENTS.md (runs all experiments)"
    )
    p.add_argument("-o", "--output", default="EXPERIMENTS.md")
    p.add_argument("--scale", choices=("small", "full"), default="full")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--only", nargs="*", default=None)
    p.set_defaults(func=_cmd_report)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except (OSError, ValueError) as exc:
        # missing/malformed input files, bad plans, bad parameter combos:
        # one line on stderr, exit 2, never a traceback
        return cli_error(str(exc))


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
