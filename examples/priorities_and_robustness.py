#!/usr/bin/env python
"""Scenario: priority customers and imperfect bandwidth models.

Two questions a practitioner would ask before adopting the paper's
scheduler, answered with the library's extension modules:

1. *My applications have priorities.*  The weighted-SRT extension orders
   each half of the Section-4 split by Smith's rule (``r(T)/w``); we
   measure what ignoring the weights costs.
2. *My bandwidth response is not linear.*  The nonlinear simulator replays
   the window policy under concave/convex/threshold response curves and
   compares it against full-allocation list scheduling, which is immune to
   the curve by construction.

Run:  python examples/priorities_and_robustness.py
"""

import random

from repro.extensions import (
    NLJob,
    RESPONSES,
    nonlinear_lower_bound,
    random_weights,
    schedule_tasks_weight_oblivious,
    schedule_tasks_weighted,
    simulate_nonlinear,
    weighted_srt_lower_bound,
    weighted_sum,
)
from repro.workloads import make_taskset


def weighted_demo() -> None:
    rng = random.Random(11)
    m, k = 12, 40
    ti = make_taskset("cloud", rng, m, k)
    weights = random_weights(rng, ti, lo=1, hi=20)
    lb = weighted_srt_lower_bound(ti, weights)

    weighted = schedule_tasks_weighted(ti, weights)
    oblivious = schedule_tasks_weight_oblivious(ti, weights)
    sw = weighted_sum(weighted, weights)
    so = weighted_sum(oblivious, weights)

    print("--- priorities (weighted SRT) ---")
    print(f"cluster m={m}, applications k={k}, weights in [1, 20]")
    print(f"Smith-rule lower bound on Σ w·f : {float(lb):.0f}")
    print(f"weight-aware split scheduler    : {float(sw):.0f}  ({float(sw/lb):.3f}x LB)")
    print(f"weight-oblivious (Thm 4.8)      : {float(so):.0f}  ({float(so/lb):.3f}x LB)")
    print(f"cost of ignoring priorities     : {float(so/sw):.2f}x")
    print()


def robustness_demo() -> None:
    rng = random.Random(4)
    m, n = 8, 80
    jobs = [
        NLJob(
            id=i,
            size=float(rng.randint(1, 6)),
            requirement=rng.randint(2, 40) / 40.0,
        )
        for i in range(n)
    ]
    lb = nonlinear_lower_bound(jobs, m)
    print("--- robustness to the response curve ---")
    print(f"{n} jobs on m={m}; progress per step = g(share / r_j)")
    print(f"{'response':<18}{'window':>8}{'full-only':>11}{'advantage':>11}")
    for name, g in RESPONSES.items():
        w = simulate_nonlinear(jobs, m, g, policy="window").makespan
        f = simulate_nonlinear(jobs, m, g, policy="full_only").makespan
        print(f"{name:<18}{w:>8}{f:>11}{f / w:>10.2f}x")
    print()
    print(
        "Concave curves (real networks saturate) *increase* the window"
        "\nalgorithm's edge; even at convex g(x)=x² it does not fall behind"
        "\nthe conservative full-allocation baseline."
    )


if __name__ == "__main__":
    weighted_demo()
    robustness_demo()
