#!/usr/bin/env python
"""Scenario: composed cloud services (Section 4 of the paper).

Users submit applications (*tasks*), each a bundle of small parallel
services (*jobs*) with individual bandwidth demands; a task is done when its
last service finishes and we care about the *average* task completion time.

The Section-4 algorithm splits tasks into bandwidth-heavy and
bandwidth-light populations, runs each on half the machine, and orders them
shortest-first within each half — achieving ``(2 + 4/(m-3)) + o(1)`` times
the optimal average completion time.

Run:  python examples/cloud_composed_services.py
"""

import random

from repro.tasks import (
    partition_tasks,
    schedule_tasks,
    schedule_tasks_fifo,
    schedule_tasks_job_level,
    srt_guarantee_factor,
    srt_lower_bound,
)
from repro.workloads import cloud_taskset


def main() -> None:
    rng = random.Random(24)
    m = 16           # processors
    k = 60           # submitted applications
    instance = cloud_taskset(rng, m, k)

    heavy, light = partition_tasks(instance)
    print(f"cluster: m={m}, applications: k={k}, services: {instance.n_jobs}")
    print(
        f"partition (threshold 1/(m-1) = 1/{m-1}): "
        f"{len(heavy)} bandwidth-heavy, {len(light)} bandwidth-light"
    )
    lb = srt_lower_bound(instance)
    print(f"Lemma 4.3 lower bound on Σ completion times: {lb}")
    print()

    algos = [
        ("Section-4 split algorithm", schedule_tasks),
        ("FIFO (submission order)", schedule_tasks_fifo),
        ("task-oblivious (job-level SRJ)", schedule_tasks_job_level),
    ]
    for name, algo in algos:
        res = algo(instance)
        s = res.sum_completion_times()
        print(f"{name}:")
        print(f"  sum of completion times : {s}  ({s/lb:.3f}x LB)")
        print(f"  average completion time : {float(res.average_completion_time()):.2f}")
        print(f"  makespan                : {res.makespan}")
        print()

    print(
        f"guarantee for the split algorithm (Thm 4.8): "
        f"{float(srt_guarantee_factor(m)):.3f}x OPT + o(1)"
    )
    print(
        "\nThe task-oblivious baseline has a fine makespan but poor average"
        "\ncompletion time: it interleaves all tasks, so early applications"
        "\nwait for the whole queue.  The split algorithm finishes small"
        "\napplications first within each resource class."
    )


if __name__ == "__main__":
    main()
