#!/usr/bin/env python
"""Scenario: memory allocation in pipelined router forwarding engines.

Chung, Graham, Mao and Varghese (2006) — the origin of *bin packing with
splittable items and cardinality constraints*, and the problem the paper's
Corollary 3.9 improves on: routing tables (items) must be distributed over
memory banks (bins).  A table may be split across banks, but each bank can
serve at most ``k`` table lookups per cycle (cardinality constraint).

For large k the classic simple algorithms stay ~2x optimal while the
sliding-window packer approaches optimal (ratio 1 + 1/(k-1)).

Run:  python examples/router_memory_packing.py
"""

import random
from fractions import Fraction

from repro.binpacking import (
    pack_first_fit_unsplit,
    pack_next_fit,
    pack_sliding_window,
    packing_lower_bound,
    waste,
)
from repro.binpacking.item import make_items
from repro.workloads import next_fit_adversarial_items


def random_routing_tables(rng: random.Random, n: int):
    """Table sizes as fractions of one memory bank (may exceed a bank)."""
    sizes = []
    for _ in range(n):
        # log-uniform in (1/64, 2] — a few big tables, many small ones
        e = rng.uniform(-6, 1)
        sizes.append(Fraction(max(int(round(2**e * 64)), 1), 64))
    return make_items(sizes)


def report(name, packing, lb):
    packing.assert_valid()
    bins = packing.num_bins
    print(
        f"  {name:<28} {bins:>4} banks  ({bins/lb:.3f}x LB, "
        f"waste {float(waste(packing)):.1f} bank-units)"
    )


def main() -> None:
    rng = random.Random(7)
    k = 16                      # lookups per bank per cycle
    tables = random_routing_tables(rng, 180)
    lb = packing_lower_bound(tables, k)

    print(f"{len(tables)} routing tables, cardinality constraint k={k}")
    print(f"lower bound: {lb} memory banks")
    print()
    print("log-uniform table sizes:")
    report("sliding window (Cor. 3.9)", pack_sliding_window(tables, k), lb)
    report("next fit (splitting)", pack_next_fit(tables, k), lb)
    report("first fit (no splitting)", pack_first_fit_unsplit(tables, k), lb)

    print()
    print("adversarial sizes (the 2 - 1/k family for NextFit):")
    adv = next_fit_adversarial_items(40, k=k)
    lb2 = packing_lower_bound(adv, k)
    report("sliding window (Cor. 3.9)", pack_sliding_window(adv, k), lb2)
    report("next fit (splitting)", pack_next_fit(adv, k), lb2)
    report("first fit (no splitting)", pack_first_fit_unsplit(adv, k), lb2)
    print()
    print(
        "On the adversarial mix the window packer recreates the optimal"
        "\n(one big table + k-1 slivers per bank) layout; NextFit burns"
        "\nnearly twice the memory."
    )


if __name__ == "__main__":
    main()
