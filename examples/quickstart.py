#!/usr/bin/env python
"""Quickstart: schedule jobs on processors sharing one divisible resource.

The model (Kling, Mäcker, Riechers, Skopalik; SPAA 2017): ``m`` identical
processors share a single resource (think: bandwidth).  Job ``j`` has a size
``p_j`` and a resource requirement ``r_j``; given a share ``R ≤ r_j`` in a
step it completes ``R / r_j`` units of volume.  We minimize the makespan.

Run:  python examples/quickstart.py
"""

from fractions import Fraction

from repro import (
    Instance,
    assert_valid,
    makespan_lower_bound,
    schedule_srj,
)


def main() -> None:
    # five jobs: (size, requirement) — requirements above 1 are allowed
    # (such jobs can never use the whole resource in one step)
    inst = Instance.from_requirements(
        m=4,
        requirements=[
            Fraction(1, 5),   # light consumer
            Fraction(2, 5),
            Fraction(1, 2),
            Fraction(7, 10),  # heavy consumer
            Fraction(6, 5),   # oversized: a genuine bottleneck job
        ],
        sizes=[3, 2, 1, 2, 4],
    )

    result = schedule_srj(inst)

    print(f"instance: m={inst.m} processors, n={inst.n} jobs")
    print(f"lower bound (Eq. 1 of the paper): {makespan_lower_bound(inst)}")
    print(f"achieved makespan:                {result.makespan}")
    print(f"guarantee (Thm 3.3): 2 + 1/(m-2) = {2 + 1 / (inst.m - 2):.3f}x")
    print()
    print("per-job completion times (canonical job order = sorted by r_j):")
    for job in inst.jobs:
        t = result.completion_times[job.id]
        print(
            f"  job {job.id}: p={job.size}, r={job.requirement} "
            f"-> finished at step {t}"
        )

    # expand the run-length-encoded trace into a full schedule and have the
    # validator re-check every model rule from first principles
    schedule = result.schedule()
    assert_valid(schedule)
    print()
    print("schedule validated: resource never overused, non-preemptive,")
    print("no migration, every job fully served.")
    print()
    print("timeline (job@processor:share):")
    for t, step in enumerate(schedule.steps, start=1):
        cells = ", ".join(
            f"j{p.job_id}@p{p.processor}:{p.share}" for p in step.pieces
        )
        print(f"  t={t:>2}  [{step.total_share()} used]  {cells}")


if __name__ == "__main__":
    main()
