#!/usr/bin/env python
"""Scenario: a rack of servers sharing uplink bandwidth.

The paper's motivating example: ``m`` processors (servers) share the rack's
total uplink.  Data-intensive jobs (backups, shuffles) need a large slice of
the uplink per unit of work; compute-heavy jobs barely touch it.  The
scheduler must both place jobs and divide the bandwidth over time.

This example builds a bimodal workload (many compute jobs + a minority of
data-hungry ones), runs the paper's sliding-window algorithm and the
classic baselines, and compares makespans and bandwidth utilization.

Run:  python examples/bandwidth_datacenter.py
"""

import random

from repro import makespan_lower_bound, schedule_srj
from repro.baselines import (
    schedule_greedy_fill,
    schedule_list_scheduling,
)
from repro.simulator import ScheduleMetrics
from repro.workloads import bimodal_instance


def main() -> None:
    rng = random.Random(2017)
    m = 12          # servers in the rack
    n = 120         # queued jobs
    inst = bimodal_instance(rng, m, n)

    lb = makespan_lower_bound(inst)
    print(f"rack: {m} servers, {n} jobs, Eq.(1) lower bound = {lb} steps")
    print()

    # --- the paper's algorithm -------------------------------------------
    ours = schedule_srj(inst)
    metrics = ScheduleMetrics.from_schedule(ours.schedule(max_steps=10**6))
    print("sliding-window algorithm (Listing 1):")
    print(f"  makespan          : {ours.makespan}  ({ours.makespan/lb:.3f}x LB)")
    print(f"  avg bandwidth use : {metrics.avg_utilization:.1%}")
    print(f"  wasted bandwidth  : {float(ours.total_waste):.2f} step-units")
    print()

    # --- baselines --------------------------------------------------------
    for name, runner in [
        ("list scheduling (Garey-Graham style)", schedule_list_scheduling),
        ("greedy fill (no splitting)", schedule_greedy_fill),
    ]:
        res = runner(inst)
        bm = ScheduleMetrics.from_schedule(res.schedule)
        print(f"{name}:")
        print(
            f"  makespan          : {res.makespan}  "
            f"({res.makespan/lb:.3f}x LB)"
        )
        print(f"  avg bandwidth use : {bm.avg_utilization:.1%}")
        print()

    print(
        "The window algorithm keeps the uplink saturated by *fracturing* at"
        "\nmost one job per step (giving it the leftover bandwidth), which"
        "\nthe full-allocation baselines cannot do."
    )


if __name__ == "__main__":
    main()
