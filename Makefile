# Convenience targets for the test/bench/perf gates (see docs/PERFORMANCE.md).
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench bench-srt bench-obs bench-incremental obs-smoke perf-check lint lint-hotpath faults-smoke sweep-smoke telemetry-smoke serve-smoke faultsweep perf-history check

test:
	$(PYTHON) -m pytest -x -q

# fast bench smoke: E4 + SRT micro-benches + BENCH_1/BENCH_2 at small scale
bench-smoke:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest \
		benchmarks/bench_e4_runtime.py benchmarks/bench_srt_runtime.py -q

# regenerate the standalone bench-regression artifacts
bench:
	$(PYTHON) -m repro.perf.bench --scale small -o BENCH_1.json

bench-srt:
	$(PYTHON) -m repro.perf.bench_srt --scale small -o BENCH_2.json

bench-obs:
	$(PYTHON) -m repro.perf.bench_obs --scale small -o BENCH_3.json

# incremental BENCH regeneration on the experiment fabric: points are
# content-addressed in .repro-cache/sweeps, so only points whose inputs
# (grid, seed, reps, schema salt) changed are re-timed (docs/SCALING.md)
bench-incremental:
	$(PYTHON) -m repro.perf.bench --scale small -o BENCH_1.json \
		--cache-dir .repro-cache/sweeps
	$(PYTHON) -m repro.perf.bench_srt --scale small -o BENCH_2.json \
		--cache-dir .repro-cache/sweeps
	$(PYTHON) -m repro.perf.bench_obs --scale small -o BENCH_3.json \
		--cache-dir .repro-cache/sweeps

# observability gates: observer overhead (BENCH_3.json; no-op <= 5%,
# full stats <= 30%) plus a stats-CLI toy run whose observer/result
# cross-check must agree (non-zero exit on mismatch)
obs-smoke:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest \
		benchmarks/bench_obs_overhead.py -q
	$(PYTHON) -m repro stats -m 6 -n 40 --backend int --json > /dev/null
	@echo "obs-smoke: OK"

# the int backend must spend < 10% of its profiled time in fractions.*
perf-check:
	$(PYTHON) -m repro.analysis.profiling

# fault-injection smoke: random instances x random FaultPlans through the
# hardened parallel runner; exits non-zero if any recovered schedule fails
# validation, plus a CLI degradation-report round-trip
faults-smoke:
	$(PYTHON) -m repro.perf.faultsweep --trials 8 -m 4 -n 16 --events 5
	$(PYTHON) -m repro faults -m 4 -n 24 --fault-seed 7 --json > /dev/null
	@echo "faults-smoke: OK"

# AST-based invariant checkers (docs/STATIC_ANALYSIS.md): exact-backend
# purity, float-free exact modules, derived (clock/PID-free) identities,
# worker-safe callables, observer threading.  Exits 1 on any finding.
lint:
	$(PYTHON) -m repro lint

# back-compat alias for the old grep gate: the hot-path rule alone, now
# AST-based (sees aliased imports, ignores comments/docstrings)
lint-hotpath:
	$(PYTHON) -m repro lint --rule hotpath-exact

# sweep-fabric smoke: tiny sweep -> interrupt -> resume; verifies the
# resumed report is bit-identical, a repeated run has 100% cache hits
# (0 points re-solved) and half-shards merge to the same report
sweep-smoke:
	$(PYTHON) -m repro.sweep.smoke
	@echo "sweep-smoke: OK"

# distributed-telemetry smoke: a tiny spanned sweep must merge to one
# rooted span tree, byte-identical across worker counts and shard
# layouts; live status must report completion; and an injected 12%
# slowdown must trip 'perf compare' (exit 1) at a 5% gate
telemetry-smoke:
	$(PYTHON) -m repro.obs.smoke
	@echo "telemetry-smoke: OK"

# service-daemon smoke (docs/SERVICE.md): boot a real `repro-sched serve`
# daemon, then drive concurrent clients through every failure path —
# malformed frames, worker crashes, hangs past the deadline, an admission
# flood, a FaultPlan-derived injection mix — and finish with a SIGTERM
# drain that must checkpoint queued work and exit 0.  Artifacts (daemon
# log, state files) land in .repro-service-smoke/ for CI upload.
serve-smoke:
	$(PYTHON) -m repro.service.smoke
	@echo "serve-smoke: OK"

# regenerate FAULTSWEEP.json through the sweep fabric (cache-aware; the
# report records cache hit/solved counts like every BENCH artifact)
faultsweep:
	$(PYTHON) -m repro sweep run faultsweep --cache-dir .repro-cache/sweeps

# ingest the current BENCH artifacts into the durable perf time-series
# and gate them against the rolling baseline (docs/OBSERVABILITY.md)
perf-history:
	$(PYTHON) -m repro perf compare BENCH_1.json --ingest
	$(PYTHON) -m repro perf compare BENCH_2.json --ingest
	$(PYTHON) -m repro perf compare BENCH_3.json --ingest
	$(PYTHON) -m repro perf history

check: test lint perf-check bench-smoke obs-smoke faults-smoke sweep-smoke telemetry-smoke serve-smoke
