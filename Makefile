# Convenience targets for the test/bench/perf gates (see docs/PERFORMANCE.md).
PYTHON ?= python
export PYTHONPATH := src

.PHONY: test bench-smoke bench perf-check check

test:
	$(PYTHON) -m pytest -x -q

# fast bench smoke: E4 table + micro-benches + BENCH_1.json at small scale
bench-smoke:
	REPRO_BENCH_SCALE=small $(PYTHON) -m pytest benchmarks/bench_e4_runtime.py -q

# regenerate the standalone bench-regression artifact
bench:
	$(PYTHON) -m repro.perf.bench --scale small -o BENCH_1.json

# the int backend must spend < 10% of its profiled time in fractions.*
perf-check:
	$(PYTHON) -m repro.analysis.profiling

check: test perf-check bench-smoke
