"""Shim for environments without the `wheel` package (offline installs).

Allows ``pip install -e . --no-build-isolation --no-use-pep517`` and
``python setup.py develop`` to work with older setuptools; all metadata
lives in pyproject.toml.
"""

from setuptools import setup

setup()
